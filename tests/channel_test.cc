/** @file Unit tests for the FR-FCFS channel controller. */
#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.h"
#include "dram/channel.h"

namespace mempod {
namespace {

constexpr TimePs kExtra = 5000;

struct ChannelFixture : ::testing::Test
{
    EventQueue eq;
    DramSpec spec = DramSpec::hbm1GHz().withChannelBytes(2_MiB);
    Channel ch{eq, spec, "test", kExtra};

    TimePs
    issueAndFinish(Addr tag, AccessType type, std::uint32_t bank,
                   std::int64_t row)
    {
        TimePs finish = 0;
        Request req;
        req.addr = tag;
        req.type = type;
        req.onComplete = [&](TimePs f) { finish = f; };
        ch.enqueue(std::move(req), ChannelAddr{bank, row});
        eq.runAll();
        return finish;
    }
};

TEST_F(ChannelFixture, SingleReadLatencyIsIdealPlusInterconnect)
{
    const TimePs finish = issueAndFinish(0, AccessType::kRead, 0, 0);
    EXPECT_EQ(finish, spec.idealReadLatencyPs() + kExtra);
    EXPECT_EQ(ch.stats().reads, 1u);
    EXPECT_EQ(ch.stats().rowMisses, 1u);
}

TEST_F(ChannelFixture, RowHitIsFasterThanRowMiss)
{
    const TimePs first = issueAndFinish(0, AccessType::kRead, 0, 5);
    const TimePs start2 = eq.now();
    const TimePs hit = issueAndFinish(64, AccessType::kRead, 0, 5);
    const TimePs start3 = eq.now();
    const TimePs miss = issueAndFinish(128, AccessType::kRead, 0, 9);
    EXPECT_LT(hit - start2, miss - start3);
    EXPECT_GT(first, 0u);
    EXPECT_EQ(ch.stats().rowHits, 1u);
    EXPECT_EQ(ch.stats().rowMisses, 2u);
}

TEST_F(ChannelFixture, WritesComplete)
{
    const TimePs finish = issueAndFinish(0, AccessType::kWrite, 1, 3);
    EXPECT_GT(finish, 0u);
    EXPECT_EQ(ch.stats().writes, 1u);
}

TEST_F(ChannelFixture, AllQueuedRequestsComplete)
{
    int completed = 0;
    for (int i = 0; i < 64; ++i) {
        Request req;
        req.addr = static_cast<Addr>(i) * 64;
        req.type = i % 3 == 0 ? AccessType::kWrite : AccessType::kRead;
        req.onComplete = [&](TimePs) { ++completed; };
        ch.enqueue(std::move(req),
                   ChannelAddr{static_cast<std::uint32_t>(i % 16),
                               i % 4});
    }
    eq.runAll();
    EXPECT_EQ(completed, 64);
    EXPECT_TRUE(ch.idle());
    EXPECT_EQ(ch.stats().reads + ch.stats().writes, 64u);
}

TEST_F(ChannelFixture, SameBankConflictSerializesViaPrecharge)
{
    TimePs f1 = 0, f2 = 0;
    Request a, b;
    a.onComplete = [&](TimePs f) { f1 = f; };
    b.onComplete = [&](TimePs f) { f2 = f; };
    ch.enqueue(std::move(a), ChannelAddr{0, 0});
    ch.enqueue(std::move(b), ChannelAddr{0, 7});
    eq.runAll();
    EXPECT_GT(f2, f1);
    EXPECT_EQ(ch.stats().precharges, 1u);
    // The conflicting access pays at least tRP + tRCD beyond the first.
    EXPECT_GE(f2 - f1,
              spec.timing.tRP + spec.timing.tRCD);
}

TEST_F(ChannelFixture, BankParallelismBeatsSerialization)
{
    // Two requests to different banks finish sooner than two
    // conflicting requests to the same bank.
    EventQueue eq2;
    Channel two_banks(eq2, spec, "par", kExtra);
    TimePs last_par = 0;
    for (std::uint32_t b : {0u, 1u}) {
        Request r;
        r.onComplete = [&](TimePs f) { last_par = std::max(last_par, f); };
        two_banks.enqueue(std::move(r), ChannelAddr{b, 0});
    }
    eq2.runAll();

    EventQueue eq3;
    Channel one_bank(eq3, spec, "ser", kExtra);
    TimePs last_ser = 0;
    for (std::int64_t row : {0, 1}) {
        Request r;
        r.onComplete = [&](TimePs f) { last_ser = std::max(last_ser, f); };
        one_bank.enqueue(std::move(r), ChannelAddr{0, row});
    }
    eq3.runAll();
    EXPECT_LT(last_par, last_ser);
}

TEST_F(ChannelFixture, RefreshOccursUnderSteadyTraffic)
{
    // Drive traffic past several tREFI windows.
    const std::uint64_t refi_ps = spec.timing.tREFI;
    std::uint64_t issued = 0;
    std::function<void()> feeder = [&] {
        if (eq.now() > 5 * refi_ps)
            return;
        Request r;
        r.onComplete = [](TimePs) {};
        ch.enqueue(std::move(r),
                   ChannelAddr{static_cast<std::uint32_t>(issued % 16),
                               static_cast<std::int64_t>(issued % 8)});
        ++issued;
        eq.scheduleAfter(refi_ps / 20, feeder);
    };
    eq.schedule(0, feeder);
    eq.runAll();
    EXPECT_GE(ch.stats().refreshes, 4u);
}

TEST_F(ChannelFixture, DeterministicAcrossRuns)
{
    auto run = [this]() {
        EventQueue q;
        Channel c(q, spec, "det", kExtra);
        std::vector<TimePs> finishes;
        for (int i = 0; i < 32; ++i) {
            Request r;
            r.type = i % 2 ? AccessType::kWrite : AccessType::kRead;
            r.onComplete = [&](TimePs f) { finishes.push_back(f); };
            c.enqueue(std::move(r),
                      ChannelAddr{static_cast<std::uint32_t>(i % 4),
                                  i % 3});
        }
        q.runAll();
        return finishes;
    };
    EXPECT_EQ(run(), run());
}

TEST_F(ChannelFixture, RowHitRateHighForSequentialStream)
{
    for (int i = 0; i < 128; ++i) {
        Request r;
        r.onComplete = [](TimePs) {};
        // 128 consecutive lines in one row.
        ch.enqueue(std::move(r), ChannelAddr{0, 0});
    }
    eq.runAll();
    EXPECT_GT(ch.rowHitRate(), 0.9);
}

TEST_F(ChannelFixture, MaxQueueDepthTracked)
{
    for (int i = 0; i < 10; ++i) {
        Request r;
        r.onComplete = [](TimePs) {};
        ch.enqueue(std::move(r), ChannelAddr{0, 0});
    }
    EXPECT_GE(ch.stats().maxQueueDepth, 10u);
    eq.runAll();
}

TEST_F(ChannelFixture, ReadsHavePriorityOverWrites)
{
    TimePs wr_done = 0, rd_done = 0;
    Request w, r;
    w.type = AccessType::kWrite;
    w.onComplete = [&](TimePs f) { wr_done = f; };
    r.type = AccessType::kRead;
    r.onComplete = [&](TimePs f) { rd_done = f; };
    // Write enqueued first, but below the drain watermark the read
    // queue is served first.
    ch.enqueue(std::move(w), ChannelAddr{0, 0});
    ch.enqueue(std::move(r), ChannelAddr{0, 0});
    eq.runAll();
    EXPECT_LT(rd_done, wr_done);
}

TEST_F(ChannelFixture, WriteBurstTriggersDrainMode)
{
    // Saturate the write queue past the high watermark, then add one
    // read: the drain should let several writes go before the read.
    int writes_before_read = 0;
    bool read_done = false;
    for (int i = 0; i < 24; ++i) {
        Request w;
        w.type = AccessType::kWrite;
        w.onComplete = [&](TimePs) {
            if (!read_done)
                ++writes_before_read;
        };
        ch.enqueue(std::move(w),
                   ChannelAddr{static_cast<std::uint32_t>(i % 8), 0});
    }
    Request r;
    r.type = AccessType::kRead;
    r.onComplete = [&](TimePs) { read_done = true; };
    ch.enqueue(std::move(r), ChannelAddr{0, 0});
    eq.runAll();
    EXPECT_GT(writes_before_read, 0);
}

} // namespace
} // namespace mempod
