/** @file Unit tests for one memory Pod. */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pod.h"

namespace mempod {
namespace {

struct PodFixture : ::testing::Test
{
    EventQueue eq;
    MemorySystem mem{eq, SystemGeometry::tiny(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600()};

    PodParams
    defaults()
    {
        PodParams p;
        p.meaEntries = 8;
        p.meaCounterBits = 8;
        return p;
    }

    /** First slow home page belonging to pod 0 (tiny geometry). */
    PageId
    slowPageOfPod0(std::uint64_t k = 0)
    {
        return mem.geom().fastPages() + k * mem.geom().numPods;
    }

    int
    demand(Pod &pod, PageId page, std::uint64_t offset = 0)
    {
        int completions = 0;
        pod.handleDemand(page, offset,
                         {.arrival = eq.now(),
                          .done = [&](TimePs) { ++completions; }});
        eq.runAll();
        return completions;
    }
};

TEST_F(PodFixture, DemandForwardedAndCompleted)
{
    Pod pod(0, eq, mem, defaults());
    EXPECT_EQ(demand(pod, slowPageOfPod0()), 1);
    EXPECT_EQ(mem.stats().demandSlow, 1u);
}

TEST_F(PodFixture, MeaObservesEveryDemand)
{
    Pod pod(0, eq, mem, defaults());
    const PageId page = slowPageOfPod0();
    demand(pod, page);
    demand(pod, page);
    const auto snap = pod.mea().snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].id, mem.map().podLocalOfPage(page));
    EXPECT_EQ(snap[0].count, 2u);
}

TEST_F(PodFixture, IntervalMigratesHotSlowPageToFast)
{
    Pod pod(0, eq, mem, defaults());
    const PageId hot = slowPageOfPod0(9);
    const std::uint64_t local = mem.map().podLocalOfPage(hot);
    for (int i = 0; i < 5; ++i)
        demand(pod, hot);
    EXPECT_FALSE(pod.remap().inFast(local));
    pod.onInterval();
    eq.runAll();
    EXPECT_TRUE(pod.remap().inFast(local));
    EXPECT_EQ(pod.stats().migrations, 1u);
    EXPECT_EQ(pod.stats().bytesMoved, 2 * kPageBytes);
    // Subsequent demands are served by fast memory.
    const std::uint64_t fast_before = mem.stats().demandFast;
    demand(pod, hot);
    EXPECT_EQ(mem.stats().demandFast, fast_before + 1);
}

TEST_F(PodFixture, HotPageAlreadyInFastIsSkipped)
{
    Pod pod(0, eq, mem, defaults());
    const PageId fast_home = 0; // fast page of pod 0
    for (int i = 0; i < 5; ++i)
        demand(pod, fast_home);
    pod.onInterval();
    eq.runAll();
    EXPECT_EQ(pod.stats().migrations, 0u);
    EXPECT_EQ(pod.stats().candidatesSkipped, 1u);
}

TEST_F(PodFixture, MeaResetsEachInterval)
{
    Pod pod(0, eq, mem, defaults());
    demand(pod, slowPageOfPod0());
    pod.onInterval();
    eq.runAll();
    EXPECT_EQ(pod.mea().size(), 0u);
}

TEST_F(PodFixture, VictimScanSkipsHotResidents)
{
    PodParams p = defaults();
    p.meaEntries = 4;
    Pod pod(0, eq, mem, p);
    // Make two slow pages hot; migrate them in.
    const PageId a = slowPageOfPod0(1);
    const PageId b = slowPageOfPod0(2);
    for (int i = 0; i < 4; ++i) {
        demand(pod, a);
        demand(pod, b);
    }
    pod.onInterval();
    eq.runAll();
    EXPECT_EQ(pod.stats().migrations, 2u);
    // Keep both hot across the next interval; they must not evict
    // each other (victim scan skips hot residents).
    for (int i = 0; i < 4; ++i) {
        demand(pod, a);
        demand(pod, b);
    }
    pod.onInterval();
    eq.runAll();
    EXPECT_TRUE(pod.remap().inFast(mem.map().podLocalOfPage(a)));
    EXPECT_TRUE(pod.remap().inFast(mem.map().podLocalOfPage(b)));
}

TEST_F(PodFixture, RequestsBlockedDuringMigrationDrainAfterCommit)
{
    Pod pod(0, eq, mem, defaults());
    const PageId hot = slowPageOfPod0(3);
    for (int i = 0; i < 3; ++i)
        demand(pod, hot);
    pod.onInterval(); // schedules the swap; engine starts reads
    // Without draining the event queue, issue a demand to the
    // migrating page: it must be blocked, then complete after commit.
    int completions = 0;
    pod.handleDemand(hot, 64,
                     {.arrival = eq.now(),
                      .done = [&](TimePs) { ++completions; }});
    EXPECT_EQ(pod.stats().blockedRequests, 1u);
    EXPECT_EQ(completions, 0);
    eq.runAll();
    EXPECT_EQ(completions, 1);
    EXPECT_TRUE(pod.remap().inFast(mem.map().podLocalOfPage(hot)));
}

TEST_F(PodFixture, MigrationCapRespected)
{
    PodParams p = defaults();
    p.meaEntries = 8;
    p.maxMigrationsPerInterval = 2;
    Pod pod(0, eq, mem, p);
    for (std::uint64_t k = 0; k < 6; ++k)
        for (int i = 0; i < 3; ++i)
            demand(pod, slowPageOfPod0(k));
    pod.onInterval();
    eq.runAll();
    EXPECT_EQ(pod.stats().migrations, 2u);
}

TEST_F(PodFixture, RemapPermutationSurvivesManyIntervals)
{
    PodParams p = defaults();
    Pod pod(0, eq, mem, p);
    Rng rng; // default seed
    for (int interval = 0; interval < 20; ++interval) {
        for (int i = 0; i < 50; ++i)
            demand(pod, slowPageOfPod0(rng.nextBelow(64)));
        pod.onInterval();
        eq.runAll();
    }
    pod.remap().checkConsistency();
}

TEST_F(PodFixture, MetaCacheMissInjectsBookkeepingRead)
{
    PodParams p = defaults();
    p.metaCacheEnabled = true;
    p.metaCacheBytes = 4096;
    Pod pod(0, eq, mem, p);
    EXPECT_EQ(demand(pod, slowPageOfPod0(17)), 1);
    EXPECT_EQ(pod.stats().metaCacheMisses, 1u);
    EXPECT_EQ(mem.stats().bookkeepingLines(), 1u);
    // Same page again: the remap entry is now cached.
    EXPECT_EQ(demand(pod, slowPageOfPod0(17)), 1);
    EXPECT_EQ(pod.stats().metaCacheHits, 1u);
    EXPECT_EQ(mem.stats().bookkeepingLines(), 1u);
}

TEST_F(PodFixture, TrackingStorageMatchesPaper)
{
    EventQueue eq2;
    MemorySystem paper_mem(eq2, SystemGeometry::paper(),
                           DramSpec::hbm1GHz(), DramSpec::ddr4_1600());
    PodParams p; // paper defaults: 64 entries x 2 bits
    Pod pod(0, eq2, paper_mem, p);
    EXPECT_EQ(pod.trackingStorageBits() / 8, 184u); // 184 B per Pod
}

} // namespace
} // namespace mempod
