/**
 * @file
 * Cross-module integration tests on the paper-scale geometry: these
 * check the qualitative claims of the evaluation section end to end
 * (short traces keep them fast).
 */
#include <gtest/gtest.h>

#include "baselines/thm.h"
#include "core/mempod_manager.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

Trace
paperTrace(const std::string &workload, std::uint64_t requests)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.seed = 42;
    return WorkloadCatalog::global().build(workload, gc);
}

TEST(Integration, MemPodImprovesAmmatOnPaperGeometry)
{
    const Trace t = paperTrace("xalanc", 150000);
    const RunResult base =
        runSimulation(SimConfig::paper(Mechanism::kNoMigration), t);
    const RunResult pod =
        runSimulation(SimConfig::paper(Mechanism::kMemPod), t);
    EXPECT_LT(pod.ammatNs, base.ammatNs);
    EXPECT_GT(pod.migration.migrations, 100u);
}

TEST(Integration, LibquantumWorkingSetBecomesFastResident)
{
    // The paper's Section 6.3.2 observation: libquantum's footprint
    // fits in HBM; after a few epochs MemPod serves (nearly)
    // everything from fast memory and the row-buffer hit rate of a
    // no-migration system is left far behind.
    const Trace t = paperTrace("libquantum", 400000);
    const RunResult base =
        runSimulation(SimConfig::paper(Mechanism::kNoMigration), t);
    const RunResult pod =
        runSimulation(SimConfig::paper(Mechanism::kMemPod), t);
    EXPECT_GT(pod.fastServiceFraction, 0.35); // warmup included
    EXPECT_GT(pod.fastServiceFraction, 3 * base.fastServiceFraction);
}

TEST(Integration, CameoMovesMoreDataInMoreQuanta)
{
    // Figure 8 commentary: CAMEO forces the most movement events.
    const Trace t = paperTrace("mix5", 100000);
    const RunResult cameo =
        runSimulation(SimConfig::paper(Mechanism::kCameo), t);
    const RunResult pod =
        runSimulation(SimConfig::paper(Mechanism::kMemPod), t);
    EXPECT_GT(cameo.migration.migrations, pod.migration.migrations);
}

TEST(Integration, MemPodBeatsThmWhenHotPagesShareSegments)
{
    // THM's structural limitation (Section 2): hot pages that fall in
    // the same segment fight over its single fast slot, while MemPod
    // migrates both. Drive both managers with pairs of hot slow pages
    // that collide in THM's segment mapping.
    const SystemGeometry geom = SystemGeometry::tiny();
    auto run = [&](auto make_mgr) {
        EventQueue eq;
        MemorySystem mem(eq, geom, DramSpec::hbm1GHz(),
                         DramSpec::ddr4_1600());
        auto mgr = make_mgr(eq, mem);
        for (int round = 0; round < 40; ++round) {
            for (std::uint64_t s = 0; s < 40; ++s) {
                // Two slow pages of the same contiguous THM segment.
                for (const std::uint64_t member : {0ull, 1ull}) {
                    const PageId page =
                        geom.fastPages() + s * 8 + member;
                    mgr->handleDemand(
                        {.homeAddr = AddressMap::addrOfPage(page),
                         .arrival = eq.now()});
                }
            }
            eq.runUntil(eq.now() + 50_us);
            if (auto *mp = dynamic_cast<MemPodManager *>(mgr.get())) {
                for (std::size_t p = 0; p < mp->numPods(); ++p)
                    mp->pod(p).onInterval();
            }
            eq.runUntil(eq.now() + 200_us);
        }
        const auto &s = mem.stats();
        return static_cast<double>(s.demandFast) /
               (s.demandFast + s.demandSlow);
    };
    const double thm_fast = run([](EventQueue &eq, MemorySystem &mem) {
        return std::unique_ptr<MemoryManager>(
            new ThmManager(eq, mem, ThmParams{}));
    });
    const double pod_fast = run([](EventQueue &eq, MemorySystem &mem) {
        MemPodParams p;
        p.pod.meaEntries = 64;
        p.pod.minHotCount = 1; // pages see one touch per interval here
        return std::unique_ptr<MemoryManager>(
            new MemPodManager(eq, mem, p));
    });
    // THM can keep at most one of each colliding pair in fast memory
    // (and its competing counters suppress the alternating pattern
    // entirely); MemPod migrates both pages of every pair.
    EXPECT_LT(thm_fast, 0.62);
    EXPECT_GT(pod_fast, 0.8);
    EXPECT_GT(pod_fast, thm_fast * 1.3);
}

TEST(Integration, MigrationTrafficDividesAcrossPods)
{
    const Trace t = paperTrace("mix10", 100000);
    SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
    Simulation sim(cfg);
    sim.run(t);
    auto &mgr = dynamic_cast<MemPodManager &>(sim.manager());
    // Every pod participates (the per-pod traffic split the paper
    // reports as 804 MB/pod vs 3.1 GB total).
    for (std::size_t p = 0; p < mgr.numPods(); ++p)
        EXPECT_GT(mgr.pod(p).stats().migrations, 0u)
            << "pod " << p;
}

TEST(Integration, FutureSystemWidensMemPodAdvantage)
{
    // Figure 10: a higher fast:slow latency ratio increases migration
    // payoff. Compare MemPod's relative AMMAT gain today vs future.
    const Trace t = paperTrace("xalanc", 100000);
    const RunResult base_now =
        runSimulation(SimConfig::paper(Mechanism::kNoMigration), t);
    const RunResult pod_now =
        runSimulation(SimConfig::paper(Mechanism::kMemPod), t);
    const RunResult base_fut =
        runSimulation(SimConfig::future(Mechanism::kNoMigration), t);
    const RunResult pod_fut =
        runSimulation(SimConfig::future(Mechanism::kMemPod), t);
    const double gain_now = 1.0 - pod_now.ammatNs / base_now.ammatNs;
    const double gain_fut = 1.0 - pod_fut.ammatNs / base_fut.ammatNs;
    EXPECT_GT(gain_fut, gain_now);
}

TEST(Integration, BookkeepingCacheCostsPerformance)
{
    // Figure 9: enabling the remap-table cache hurts MemPod relative
    // to free on-chip lookups, and smaller caches hurt more.
    const Trace t = paperTrace("xalanc", 100000);
    SimConfig free_cfg = SimConfig::paper(Mechanism::kMemPod);
    SimConfig small_cfg = free_cfg;
    small_cfg.mempod.pod.metaCacheEnabled = true;
    small_cfg.mempod.pod.metaCacheBytes = 4 * 1024; // 16 KB / 4 pods
    SimConfig large_cfg = free_cfg;
    large_cfg.mempod.pod.metaCacheEnabled = true;
    large_cfg.mempod.pod.metaCacheBytes = 16 * 1024; // 64 KB / 4 pods
    const RunResult rf = runSimulation(free_cfg, t);
    const RunResult rs = runSimulation(small_cfg, t);
    const RunResult rl = runSimulation(large_cfg, t);
    EXPECT_GT(rs.ammatNs, rf.ammatNs);
    EXPECT_GE(rs.migration.metaCacheMisses,
              rl.migration.metaCacheMisses);
}

TEST(Integration, AmmatDeterministicOnPaperGeometry)
{
    const Trace t = paperTrace("mix1", 60000);
    const RunResult a =
        runSimulation(SimConfig::paper(Mechanism::kThm), t);
    const RunResult b =
        runSimulation(SimConfig::paper(Mechanism::kThm), t);
    EXPECT_DOUBLE_EQ(a.ammatNs, b.ammatNs);
}

} // namespace
} // namespace mempod
