/** @file Unit tests for the metric registry and interval sampler. */
#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "common/metrics.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

namespace mempod {
namespace {

TEST(MetricRegistry, OwnedCounterCounts)
{
    MetricRegistry reg;
    Counter &c = reg.counter("a.events", "events seen");
    c.inc();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(reg.snapshot(0).u64("a.events"), 5u);
}

TEST(MetricRegistry, AttachedCounterTracksSource)
{
    MetricRegistry reg;
    std::uint64_t source = 0;
    reg.attachCounter("b.count", "external field", &source);
    source = 17;
    EXPECT_EQ(reg.snapshot(0).u64("b.count"), 17u);
}

TEST(MetricRegistry, ComputedCounterAndGauge)
{
    MetricRegistry reg;
    std::uint64_t x = 3;
    reg.addCounterFn("sum", "computed", [&] { return x * 2; });
    reg.addGauge("level", "derived", [&] { return x / 2.0; });
    const MetricSnapshot s = reg.snapshot(42);
    EXPECT_EQ(s.simTimePs, 42u);
    EXPECT_EQ(s.u64("sum"), 6u);
    EXPECT_DOUBLE_EQ(s.real("level"), 1.5);
}

TEST(MetricRegistry, AttachedInstrumentsSnapshotTheirState)
{
    MetricRegistry reg;
    ScalarStat scalar;
    RatioStat ratio;
    Log2Histogram hist;
    reg.attachScalar("s", "scalar", &scalar);
    reg.attachRatio("r", "ratio", &ratio);
    reg.attachHistogram("h", "hist", &hist);

    scalar.sample(2.0);
    scalar.sample(6.0);
    ratio.hit();
    ratio.miss();
    hist.sample(5);

    const MetricSnapshot s = reg.snapshot(0);
    EXPECT_EQ(s.at("s").count, 2u);
    EXPECT_DOUBLE_EQ(s.at("s").real, 8.0); // sum
    EXPECT_DOUBLE_EQ(s.at("s").mean, 4.0);
    EXPECT_EQ(s.at("r").hits, 1u);
    EXPECT_EQ(s.at("r").count, 2u);
    EXPECT_DOUBLE_EQ(s.at("r").rate(), 0.5);
    EXPECT_EQ(s.at("h").count, 1u);
    EXPECT_FALSE(s.at("h").buckets.empty());
}

TEST(MetricRegistry, KindAndDescriptionLookups)
{
    MetricRegistry reg;
    reg.counter("x.count", "a count");
    reg.addGauge("x.level", "a level", [] { return 0.0; });
    EXPECT_EQ(reg.kind("x.count"), MetricKind::kCounter);
    EXPECT_EQ(reg.kind("x.level"), MetricKind::kGauge);
    EXPECT_EQ(reg.description("x.count"), "a count");
    EXPECT_TRUE(reg.contains("x.level"));
    EXPECT_FALSE(reg.contains("x.missing"));
}

TEST(MetricRegistry, NamesAreSorted)
{
    MetricRegistry reg;
    reg.counter("zeta", "z");
    reg.counter("alpha", "a");
    reg.counter("mid.dle", "m");
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "mid.dle");
    EXPECT_EQ(names[2], "zeta");
}

TEST(MetricRegistryDeathTest, NameCollisionPanics)
{
    MetricRegistry reg;
    reg.counter("dup", "first");
    EXPECT_DEATH(reg.counter("dup", "second"), "collision");
    EXPECT_DEATH(reg.addGauge("dup", "as gauge", [] { return 0.0; }),
                 "collision");
}

TEST(MetricRegistryDeathTest, UnknownLookupsPanic)
{
    MetricRegistry reg;
    EXPECT_DEATH(reg.description("ghost"), "ghost");
    const MetricSnapshot s = reg.snapshot(0);
    EXPECT_DEATH(s.u64("ghost"), "ghost");
}

TEST(MetricSnapshot, DeltaSubtractsMonotonicFields)
{
    MetricRegistry reg;
    std::uint64_t count = 10;
    RatioStat ratio;
    ScalarStat scalar;
    Log2Histogram hist;
    double level = 1.0;
    reg.attachCounter("c", "", &count);
    reg.attachRatio("r", "", &ratio);
    reg.attachScalar("s", "", &scalar);
    reg.attachHistogram("h", "", &hist);
    reg.addGauge("g", "", [&] { return level; });

    ratio.hit();
    scalar.sample(5.0);
    hist.sample(3);
    const MetricSnapshot before = reg.snapshot(100);

    count = 25;
    ratio.hit();
    ratio.miss();
    scalar.sample(7.0);
    hist.sample(3);
    hist.sample(100);
    level = 9.0;
    const MetricSnapshot after = reg.snapshot(200);

    const MetricSnapshot d = metricDelta(before, after);
    EXPECT_EQ(d.simTimePs, 200u);
    EXPECT_EQ(d.u64("c"), 15u);
    EXPECT_EQ(d.at("r").hits, 1u);
    EXPECT_EQ(d.at("r").count, 2u);
    EXPECT_EQ(d.at("s").count, 1u);
    EXPECT_DOUBLE_EQ(d.at("s").real, 7.0); // sum delta
    EXPECT_EQ(d.at("h").count, 2u);
    // Gauges are level metrics: the delta keeps the later value.
    EXPECT_DOUBLE_EQ(d.real("g"), 9.0);
}

TEST(MetricSnapshotDeathTest, DeltaRejectsBackwardsCounter)
{
    MetricRegistry reg;
    std::uint64_t count = 10;
    reg.attachCounter("c", "", &count);
    const MetricSnapshot before = reg.snapshot(0);
    count = 5;
    const MetricSnapshot after = reg.snapshot(1);
    EXPECT_DEATH(metricDelta(before, after), "backwards");
}

TEST(IntervalSampler, TicksAlignToSimulatedTime)
{
    EventQueue eq;
    MetricRegistry reg;
    Counter &c = reg.counter("ticks", "work done");
    IntervalSampler sampler(eq, reg, /*period=*/1000);
    sampler.start();

    // Work lands at 150, 1150, 2150: one increment per period.
    for (TimePs t : {150u, 1150u, 2150u})
        eq.schedule(t, [&c] { c.inc(); });
    eq.runUntil(3000);

    ASSERT_EQ(sampler.records().size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        const IntervalRecord &r = sampler.records()[i];
        EXPECT_EQ(r.index, i);
        EXPECT_EQ(r.startPs, i * 1000);
        EXPECT_EQ(r.endPs, (i + 1) * 1000);
        EXPECT_EQ(r.delta.u64("ticks"), 1u);
    }
}

TEST(IntervalSampler, FinalizeCapturesPartialInterval)
{
    EventQueue eq;
    MetricRegistry reg;
    Counter &c = reg.counter("ticks", "work done");
    IntervalSampler sampler(eq, reg, /*period=*/1000);
    sampler.start();

    eq.schedule(1499, [&c] { c.inc(); });
    eq.runUntil(1500);

    ASSERT_EQ(sampler.records().size(), 1u);
    sampler.finalize(1500);
    ASSERT_EQ(sampler.records().size(), 2u);
    const IntervalRecord &tail = sampler.records().back();
    EXPECT_EQ(tail.startPs, 1000u);
    EXPECT_EQ(tail.endPs, 1500u);
    EXPECT_EQ(tail.delta.u64("ticks"), 1u);

    // Finalizing with no elapsed time adds nothing.
    sampler.finalize(1500);
    EXPECT_EQ(sampler.records().size(), 2u);
}

// --- end-to-end: the full simulation registers every layer ---

SimConfig
tinyConfig(Mechanism m)
{
    SimConfig c = SimConfig::paper(m);
    c.geom = SystemGeometry::tiny();
    c.mempod.interval = 20_us;
    c.mempod.pod.meaEntries = 16;
    return c;
}

Trace
tinyTrace(const std::string &workload, std::uint64_t requests = 30000)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.footprintScale = 0.015;
    return WorkloadCatalog::global().build(workload, gc);
}

TEST(SimulationMetrics, EveryMechanismRegistersCoreInstruments)
{
    for (Mechanism m :
         {Mechanism::kNoMigration, Mechanism::kMemPod, Mechanism::kHma,
          Mechanism::kThm, Mechanism::kCameo}) {
        Simulation sim(tinyConfig(m));
        const MetricRegistry &reg = sim.registry();
        for (const char *name :
             {"frontend.issued", "frontend.completed",
              "frontend.ammat_ps", "mem.demand_fast", "mem.demand_slow",
              "mem.row_hit_rate", "migration.migrations",
              "migration.bytes_moved", "sim.events_executed"}) {
            EXPECT_TRUE(reg.contains(name))
                << mechanismName(m) << " missing " << name;
        }
    }
}

TEST(SimulationMetrics, MemPodRegistersPerPodInstruments)
{
    Simulation sim(tinyConfig(Mechanism::kMemPod));
    const MetricRegistry &reg = sim.registry();
    EXPECT_TRUE(reg.contains("pod0.migration.migrations"));
    EXPECT_TRUE(reg.contains("pod0.mea.sweeps"));
    EXPECT_TRUE(reg.contains("pod0.remap.occupancy"));
    EXPECT_TRUE(reg.contains("pod0.engine.ops_committed"));
}

TEST(SimulationMetrics, FinalSnapshotMatchesRunResult)
{
    const Trace t = tinyTrace("xalanc");
    Simulation sim(tinyConfig(Mechanism::kMemPod));
    const RunResult r = sim.run(t, "xalanc");
    const MetricSnapshot &s = sim.finalSnapshot();
    EXPECT_EQ(s.u64("frontend.completed"), r.completed);
    EXPECT_EQ(s.u64("migration.migrations"), r.migration.migrations);
    EXPECT_EQ(s.u64("mem.demand_fast"), r.memStats.demandFast);
    EXPECT_DOUBLE_EQ(s.real("frontend.ammat_ps") / 1000.0, r.ammatNs);
    EXPECT_EQ(s.u64("sim.events_executed"), r.eventsExecuted);
    // Per-pod swaps sum to the aggregate.
    std::uint64_t pod_sum = 0;
    for (int p = 0; s.has("pod" + std::to_string(p) +
                          ".migration.migrations");
         ++p)
        pod_sum += s.u64("pod" + std::to_string(p) +
                         ".migration.migrations");
    EXPECT_EQ(pod_sum, r.migration.migrations);
}

TEST(SimulationMetrics, SamplerRecordsPerPodCountersOverEpochs)
{
    const Trace t = tinyTrace("xalanc");
    SimConfig cfg = tinyConfig(Mechanism::kMemPod);
    cfg.statsIntervalPs = 20_us; // one record per migration epoch
    Simulation sim(cfg);
    const RunResult r = sim.run(t, "xalanc");
    ASSERT_NE(sim.sampler(), nullptr);
    const auto &records = sim.sampler()->records();
    ASSERT_GE(records.size(), 2u);

    std::uint64_t sampled_migrations = 0;
    for (const IntervalRecord &rec : records) {
        EXPECT_GT(rec.endPs, rec.startPs);
        sampled_migrations += rec.delta.u64("migration.migrations");
    }
    // Interval deltas tile the run: they sum back to the final total.
    EXPECT_EQ(sampled_migrations, r.migration.migrations);
}

TEST(SimulationMetrics, SamplerOffByDefaultKeepsEventCount)
{
    const Trace t = tinyTrace("mix1", 15000);
    const RunResult plain =
        runSimulation(tinyConfig(Mechanism::kMemPod), t);
    SimConfig cfg = tinyConfig(Mechanism::kMemPod);
    EXPECT_EQ(cfg.statsIntervalPs, 0u);
    cfg.statsIntervalPs = 20_us;
    const RunResult sampled = runSimulation(cfg, t);
    // Sampling is read-only: identical results, more executed events.
    EXPECT_DOUBLE_EQ(sampled.ammatNs, plain.ammatNs);
    EXPECT_EQ(sampled.migration.migrations, plain.migration.migrations);
    EXPECT_EQ(sampled.completed, plain.completed);
    EXPECT_GT(sampled.eventsExecuted, plain.eventsExecuted);
}

} // namespace
} // namespace mempod
