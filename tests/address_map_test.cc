/** @file Unit tests for geometry, decoding and placement. */
#include <gtest/gtest.h>

#include <unordered_set>

#include "mem/address_map.h"

namespace mempod {
namespace {

AddressMap
paperMap()
{
    const SystemGeometry g = SystemGeometry::paper();
    return AddressMap(
        g,
        DramSpec::hbm1GHz()
            .withChannelBytes(g.fastBytes / g.fastChannels)
            .org,
        DramSpec::ddr4_1600()
            .withChannelBytes(g.slowBytes / g.slowChannels)
            .org);
}

TEST(SystemGeometry, PaperDerivedQuantities)
{
    const SystemGeometry g = SystemGeometry::paper();
    EXPECT_EQ(g.totalBytes(), 9_GiB);
    EXPECT_EQ(g.fastPages(), 524288u);  // 1 GB / 2 KB
    EXPECT_EQ(g.slowPages(), 4194304u); // 8 GB / 2 KB
    EXPECT_EQ(g.totalPages(), 4718592u);
    // ~1.1M pages per pod, matching the paper's 21-bit page ids.
    EXPECT_EQ(g.pagesPerPod(), 1179648u);
    EXPECT_EQ(g.fastPagesPerPod(), 131072u);
    EXPECT_EQ(g.fastChannelsPerPod(), 2u);
    EXPECT_EQ(g.slowChannelsPerPod(), 1u);
}

TEST(SystemGeometry, ValidateAcceptsPresets)
{
    SystemGeometry::paper().validate();
    SystemGeometry::tiny().validate();
    SystemGeometry::singleTier(9_GiB, 8).validate();
}

TEST(SystemGeometryDeathTest, UnevenPodSplitPanics)
{
    SystemGeometry g = SystemGeometry::paper();
    g.fastChannels = 6; // not a multiple of 4 pods
    EXPECT_DEATH(g.validate(), "pods");
}

TEST(AddressMap, TierBoundary)
{
    const AddressMap m = paperMap();
    EXPECT_EQ(m.tierOf(0), MemTier::kFast);
    EXPECT_EQ(m.tierOf(1_GiB - 1), MemTier::kFast);
    EXPECT_EQ(m.tierOf(1_GiB), MemTier::kSlow);
    EXPECT_EQ(m.tierOf(9_GiB - 1), MemTier::kSlow);
}

TEST(AddressMap, PodLocalRoundTripFastAndSlow)
{
    const AddressMap m = paperMap();
    for (PageId p : {PageId{0}, PageId{1}, PageId{524287}, PageId{524288},
                     PageId{999999}, PageId{4718591}}) {
        const std::uint32_t pod = m.podOfPage(p);
        const std::uint64_t local = m.podLocalOfPage(p);
        EXPECT_EQ(m.pageOfPodLocal(pod, local), p);
        EXPECT_EQ(m.podLocalIsFast(local),
                  m.tierOfPage(p) == MemTier::kFast);
    }
}

TEST(AddressMap, PodsPartitionPagesEvenly)
{
    const AddressMap m = paperMap();
    std::uint64_t per_pod[4] = {};
    for (PageId p = 0; p < 4096; ++p)
        ++per_pod[m.podOfPage(p)];
    for (auto c : per_pod)
        EXPECT_EQ(c, 1024u);
}

TEST(AddressMap, ChannelBelongsToOwningPod)
{
    // Figure 4 alignment: channel c serves only pages of pod c % 4.
    const AddressMap m = paperMap();
    for (Addr a = 0; a < 9_GiB; a += 97 * kPageBytes + 64) {
        const DecodedAddr d = m.decode(a);
        EXPECT_EQ(d.channel % m.geom().numPods, d.pod)
            << "addr " << a;
    }
}

TEST(AddressMap, DecodeFieldsWithinBounds)
{
    const AddressMap m = paperMap();
    const auto fast_org = DramSpec::hbm1GHz()
                              .withChannelBytes(128_MiB)
                              .org;
    const auto slow_org = DramSpec::ddr4_1600()
                              .withChannelBytes(2_GiB)
                              .org;
    for (Addr a = 0; a < 9_GiB; a += 131 * kPageBytes + 192) {
        const DecodedAddr d = m.decode(a);
        const auto &org =
            d.tier == MemTier::kFast ? fast_org : slow_org;
        EXPECT_LT(d.bank, org.totalBanks());
        EXPECT_LT(d.row, static_cast<std::int64_t>(org.rowsPerBank));
        EXPECT_LT(d.offsetInRow, org.rowBufferBytes);
        EXPECT_LT(d.channel, m.totalChannels());
    }
}

TEST(AddressMap, ConsecutiveFastPagesOfAPodShareRows)
{
    // Pod-local fast slots s and s + fastChannelsPerPod land in the
    // same channel; within it, consecutive channel-pages pack 4 to a
    // row — the co-location effect behind the libquantum result.
    const AddressMap m = paperMap();
    const DecodedAddr a =
        m.decode(AddressMap::addrOfPage(m.pageOfPodLocal(0, 0)));
    const DecodedAddr b =
        m.decode(AddressMap::addrOfPage(m.pageOfPodLocal(0, 2)));
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.bank, b.bank);
}

TEST(AddressMap, SequentialLinesWithinPageShareRow)
{
    const AddressMap m = paperMap();
    const DecodedAddr first = m.decode(0);
    const DecodedAddr last = m.decode(kPageBytes - kLineBytes);
    EXPECT_EQ(first.row, last.row);
    EXPECT_EQ(first.bank, last.bank);
    EXPECT_EQ(first.channel, last.channel);
}

TEST(AddressMapDeathTest, OutOfRangePanics)
{
    const AddressMap m = paperMap();
    EXPECT_DEATH(m.decode(9_GiB), "range");
}

TEST(LogicalToPhysical, BijectionOnSample)
{
    LogicalToPhysical l2p(100000, 8, 3);
    std::unordered_set<PageId> seen;
    for (std::uint64_t i = 0; i < 100000; ++i) {
        const PageId p = l2p.physicalPage(i);
        EXPECT_LT(p, 100000u);
        EXPECT_TRUE(seen.insert(p).second) << "collision at " << i;
    }
}

TEST(LogicalToPhysical, CoresDisjoint)
{
    LogicalToPhysical l2p(80000, 8, 5);
    std::unordered_set<Addr> pages;
    for (std::uint8_t core = 0; core < 8; ++core) {
        for (std::uint64_t p = 0; p < 1000; ++p) {
            const Addr a = l2p.physicalAddr(core, p * kPageBytes);
            EXPECT_TRUE(pages.insert(a / kPageBytes).second);
        }
    }
}

TEST(LogicalToPhysical, OffsetWithinPagePreserved)
{
    LogicalToPhysical l2p(4096, 8, 1);
    const Addr a = l2p.physicalAddr(2, 5 * kPageBytes + 777);
    EXPECT_EQ(a % kPageBytes, 777u);
}

TEST(LogicalToPhysical, SeedChangesPlacement)
{
    LogicalToPhysical a(65536, 8, 1);
    LogicalToPhysical b(65536, 8, 99);
    int differing = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        differing += a.physicalPage(i) != b.physicalPage(i) ? 1 : 0;
    EXPECT_GT(differing, 90);
}

TEST(LogicalToPhysical, SpreadsAcrossTiers)
{
    // With a 1:8 fast:slow split, roughly 1/9 of a core's pages land
    // in the fast region.
    const std::uint64_t total = SystemGeometry::paper().totalPages();
    LogicalToPhysical l2p(total, 8, 1);
    const std::uint64_t fast_limit = SystemGeometry::paper().fastPages();
    int fast = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i)
        fast += l2p.physicalPage(i) < fast_limit ? 1 : 0;
    EXPECT_NEAR(fast / static_cast<double>(kSamples), 1.0 / 9.0, 0.03);
}

} // namespace
} // namespace mempod
