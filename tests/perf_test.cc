/**
 * @file
 * Unit tests for the host-side profiler (common/perf.h) and the
 * crash-safe file writer / perf.json renderer in sim/stats_writer.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/perf.h"
#include "sim/stats_writer.h"

namespace mempod {
namespace {

TEST(PerfScope, AccumulatesPhaseTime)
{
    PerfMonitor pm;
    {
        PerfScope scope(&pm, "setup");
    }
    {
        PerfScope scope(&pm, "setup");
    }
    // Two closed scopes: the phase exists and is monotone (the clock
    // may be coarse, so only >= 0 is portable).
    const PerfReport r = pm.report(0, 0);
    ASSERT_EQ(r.phasesNs.size(), 1u);
    EXPECT_EQ(r.phasesNs[0].first, "setup");
}

TEST(PerfScope, NullMonitorIsNoOp)
{
    PerfScope scope(nullptr, "ghost");
    scope.close();
    scope.close(); // idempotent on null too
}

TEST(PerfScope, CloseIsIdempotent)
{
    PerfMonitor pm;
    PerfScope scope(&pm, "run");
    scope.close();
    const std::uint64_t after_first = pm.phaseNs("run");
    scope.close(); // must not add a second sample
    EXPECT_EQ(pm.phaseNs("run"), after_first);
}

TEST(PerfMonitor, HeartbeatZeroIntervalAlwaysDue)
{
    PerfMonitor pm;
    EXPECT_TRUE(pm.heartbeatDue(0));
    EXPECT_TRUE(pm.heartbeatDue(0));
}

TEST(PerfMonitor, HeartbeatRateLimitsAgainstWallClock)
{
    PerfMonitor pm;
    // An hour-long interval cannot have elapsed since construction;
    // repeated polls stay quiet (the stderr heartbeat must not spam).
    const std::uint64_t hour_ns = 3'600ull * 1'000'000'000ull;
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(pm.heartbeatDue(hour_ns));
}

TEST(PerfMonitor, HeartbeatFiresOnceIntervalElapses)
{
    PerfMonitor pm;
    // Wait out a tiny interval, poll until due: the first poll after
    // the interval elapses returns true, and the limiter re-arms.
    const std::uint64_t interval_ns = 2'000'000; // 2 ms
    bool fired = false;
    const std::uint64_t deadline = perfNowNs() + 500'000'000ull;
    while (!fired && perfNowNs() < deadline)
        fired = pm.heartbeatDue(interval_ns);
    EXPECT_TRUE(fired);
    // Immediately after firing, the next poll is rate-limited again.
    EXPECT_FALSE(pm.heartbeatDue(3'600ull * 1'000'000'000ull));
}

TEST(PerfMonitor, CountersGaugesHistograms)
{
    PerfMonitor pm;
    pm.counterAdd("eq.cascades", 3);
    pm.counterAdd("eq.cascades", 4);
    pm.counterMax("eq.peak_pending", 10);
    pm.counterMax("eq.peak_pending", 7); // lower: ignored
    pm.gaugeSet("exec.work_imbalance", 1.25);
    pm.histogram("slack").sample(100);
    pm.histogram("slack").sample(100000);
    pm.resizeShards(2);
    pm.shard(0).busyNs = 50;
    pm.shard(1).stallNs = 60;

    const PerfReport r = pm.report(12345, 678);
    EXPECT_EQ(r.simTimePs, 12345u);
    EXPECT_EQ(r.eventsExecuted, 678u);
    EXPECT_EQ(r.counters.at("eq.cascades"), 7u);
    EXPECT_EQ(r.counters.at("eq.peak_pending"), 10u);
    EXPECT_DOUBLE_EQ(r.gauges.at("exec.work_imbalance"), 1.25);
    ASSERT_EQ(r.shards.size(), 2u);
    EXPECT_EQ(r.shards[0].busyNs, 50u);
    EXPECT_EQ(r.shards[1].stallNs, 60u);
    std::uint64_t hist_total = 0;
    for (const std::uint64_t b : r.histograms.at("slack"))
        hist_total += b;
    EXPECT_EQ(hist_total, 2u);
    EXPECT_GT(r.wallSeconds, 0.0);
}

TEST(PerfMonitor, EventsPerSecondUsesRunPhase)
{
    PerfMonitor pm;
    pm.phaseAddNs("run", 2'000'000'000); // exactly 2 s of "run"
    const PerfReport r = pm.report(0, 1'000'000);
    EXPECT_DOUBLE_EQ(r.eventsPerSecond, 500'000.0);
}

TEST(PerfMonitor, HeartbeatRateLimits)
{
    PerfMonitor pm;
    // A zero interval is always due; an absurdly long one never is
    // (within this test's lifetime).
    EXPECT_TRUE(pm.heartbeatDue(0));
    EXPECT_FALSE(pm.heartbeatDue(3'600'000'000'000ull));
}

TEST(PerfReport, MergeSumsAndMaxes)
{
    PerfReport a, b;
    a.wallSeconds = 1.0;
    a.maxRssKib = 100;
    a.eventsExecuted = 10;
    a.phasesNs = {{"run", 1000}};
    a.counters["x"] = 1;
    a.shards.resize(1);
    a.shards[0].busyNs = 5;
    b.wallSeconds = 2.0;
    b.maxRssKib = 50;
    b.eventsExecuted = 20;
    b.phasesNs = {{"run", 500}, {"report", 7}};
    b.counters["x"] = 2;
    b.counters["y"] = 9;
    b.shards.resize(1);
    b.shards[0].busyNs = 6;

    a.merge(b);
    EXPECT_DOUBLE_EQ(a.wallSeconds, 3.0);
    EXPECT_EQ(a.maxRssKib, 100u); // max, not sum
    EXPECT_EQ(a.eventsExecuted, 30u);
    EXPECT_EQ(a.counters.at("x"), 3u);
    EXPECT_EQ(a.counters.at("y"), 9u);
    ASSERT_EQ(a.phasesNs.size(), 2u);
    EXPECT_EQ(a.phasesNs[0].second, 1500u);
    ASSERT_EQ(a.shards.size(), 1u);
    EXPECT_EQ(a.shards[0].busyNs, 11u);
}

TEST(PerfToJson, RendersSchemaAndSections)
{
    PerfReport r;
    r.wallSeconds = 1.5;
    r.simTimePs = 42;
    r.eventsExecuted = 7;
    r.phasesNs = {{"run", 123}};
    r.counters["eq.cascades"] = 5;
    r.gauges["g"] = 0.5;
    r.histograms["h"] = {0, 2, 1};
    r.shards.resize(1);
    r.shards[0].busyNs = 11;
    r.shards[0].stallNs = 22;
    r.shards[0].events = 33;

    const std::string j = StatsWriter::perfToJson(r);
    EXPECT_NE(j.find("\"schema\":\"mempod-perf-v1\""), std::string::npos);
    EXPECT_NE(j.find("\"host\""), std::string::npos);
    EXPECT_NE(j.find("\"run\":123"), std::string::npos);
    EXPECT_NE(j.find("\"eq.cascades\":5"), std::string::npos);
    EXPECT_NE(j.find("\"busy_ns\":11"), std::string::npos);
    EXPECT_NE(j.find("\"sim_time_ps\":42"), std::string::npos);
}

// ---- crash-safe writeFile (satellite: atomic stats export) ----

std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(AtomicWriteFile, WritesAndOverwritesWithoutResidue)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "mempod_atomic_write_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const auto path = dir / "out.json";

    StatsWriter::writeFile(path.string(), "{\"v\":1}");
    EXPECT_EQ(slurp(path), "{\"v\":1}");
    // Overwrite must replace the content wholesale.
    StatsWriter::writeFile(path.string(), "{\"v\":2,\"longer\":true}");
    EXPECT_EQ(slurp(path), "{\"v\":2,\"longer\":true}");

    // No temp files may survive a successful write.
    std::size_t entries = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        ++entries;
        EXPECT_EQ(e.path().filename(), "out.json");
    }
    EXPECT_EQ(entries, 1u);
    std::filesystem::remove_all(dir);
}

TEST(AtomicWriteFile, ThrowsOnUnwritableTarget)
{
    EXPECT_THROW(StatsWriter::writeFile(
                     "/nonexistent-dir-mempod/x/y/out.json", "{}"),
                 std::runtime_error);
}

} // namespace
} // namespace mempod
