/**
 * @file
 * Figure 3: per-workload prediction detail for the paper's selected
 * interesting cases — cactus (the only workload where FC beats MEA),
 * xalanc and mix9 (representative MEA wins), and bwaves / lbm /
 * libquantum (streaming workloads where FC fails almost entirely
 * while MEA still catches the interval-boundary pages).
 */
#include <cstdio>

#include "analysis/interval_study.h"
#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    Options opt = parseOptions(
        argc, argv, "fig3_prediction_detail: selected workloads");
    banner("Figure 3", "per-workload MEA vs FC prediction detail", opt);

    if (opt.workloads.empty()) {
        opt.workloads = {"cactus", "xalanc",     "mix9",
                         "bwaves", "libquantum", "lbm"};
    }

    IntervalStudyConfig study;
    TablePrinter table({"workload", "scheme", "hits 1-10", "hits 11-20",
                        "hits 21-30"});

    BatchRunner runner(runnerOptions(opt));
    for (const auto &name : opt.workloads)
        runner.add(studyJob(study, name, opt));
    const std::vector<JobResult> results = runner.runAll();

    for (std::size_t w = 0; w < opt.workloads.size(); ++w) {
        const std::string &name = opt.workloads[w];
        const IntervalStudyResult &r = needStudy(results[w]);
        table.addRow({name, "MEA",
                      TablePrinter::num(r.meaPredictionHits[0], 2),
                      TablePrinter::num(r.meaPredictionHits[1], 2),
                      TablePrinter::num(r.meaPredictionHits[2], 2)});
        table.addRow({name, "FC",
                      TablePrinter::num(r.fcPredictionHits[0], 2),
                      TablePrinter::num(r.fcPredictionHits[1], 2),
                      TablePrinter::num(r.fcPredictionHits[2], 2)});
    }

    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf(
        "\npaper: cactus is FC's only win; bwaves/libquantum show MEA "
        "low-but-nonzero while FC scores ~0; lbm shows MEA hitting "
        "outside tier 1 where FC fails entirely.\n");
    finishBench("fig3_prediction_detail", opt, results);
    return 0;
}
