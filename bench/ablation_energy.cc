/**
 * @file
 * Ablation: data-movement energy (Section 5.3). The clustered design
 * guarantees migrations never cross the global switch; a centralized
 * driver hauls every page through it. We estimate movement energy for
 * each mechanism from its per-tier line counts, and additionally show
 * MemPod's own migration energy under the counterfactual "centralized
 * driver" assumption to isolate the locality benefit.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/energy.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "ablation_energy: data-movement energy");
    banner("Ablation", "movement energy per mechanism (Section 5.3)",
           opt);

    const auto workloads = opt.sweepWorkloads();
    const EnergyParams eparams;

    struct Row
    {
        double demand = 0, migration = 0, bookkeeping = 0;
        double migrationIfGlobal = 0; //!< counterfactual for MemPod
    };
    std::vector<std::pair<const char *, Mechanism>> mechanisms = {
        {"NoMigration", Mechanism::kNoMigration},
        {"MemPod", Mechanism::kMemPod},
        {"HMA", Mechanism::kHma},
        {"THM", Mechanism::kThm},
        {"CAMEO", Mechanism::kCameo},
    };

    TablePrinter table({"mechanism", "demand (uJ)", "migration (uJ)",
                        "bookkeeping (uJ)", "total (uJ)",
                        "migration if centralized (uJ)"});

    BatchRunner runner(runnerOptions(opt));
    for (const auto &[label, mech] : mechanisms) {
        for (const auto &w : workloads) {
            SimConfig cfg = SimConfig::paper(mech);
            if (mech == Mechanism::kHma)
                cfg.scaleHmaEpoch(40.0);
            runner.add(timingJob(cfg, w, opt, label));
        }
    }
    const std::vector<JobResult> results = runner.runAll();

    std::size_t idx = 0;
    for (const auto &[label, mech] : mechanisms) {
        Row acc;
        for (const auto &w : workloads) {
            (void)w;
            const RunResult &r = need(results[idx++]);
            const EnergyEstimate e = estimateEnergy(
                r.memStats, r.podLocalMigrations, eparams);
            acc.demand += e.demandUj;
            acc.migration += e.migrationUj;
            acc.bookkeeping += e.bookkeepingUj;
            const EnergyEstimate global =
                estimateEnergy(r.memStats, false, eparams);
            acc.migrationIfGlobal += global.migrationUj;
        }
        table.addRow(
            {label, TablePrinter::num(acc.demand, 1),
             TablePrinter::num(acc.migration, 1),
             TablePrinter::num(acc.bookkeeping, 1),
             TablePrinter::num(
                 acc.demand + acc.migration + acc.bookkeeping, 1),
             TablePrinter::num(acc.migrationIfGlobal, 1)});
        if (mech == Mechanism::kMemPod && acc.migrationIfGlobal > 0) {
            std::printf("MemPod intra-pod migration saves %.1f%% of "
                        "migration movement energy vs a centralized "
                        "driver moving the same data.\n",
                        100.0 * (1 - acc.migration /
                                         acc.migrationIfGlobal));
        }
    }

    std::printf("\n");
    table.print();
    std::printf("\n");
    table.printCsv();
    finishBench("ablation_energy", opt, results);
    return 0;
}
