/**
 * @file
 * Google-benchmark microbenchmarks for the building blocks: MEA
 * update throughput (the structure sits on the memory access path, so
 * single-cycle behaviour matters), remap-table lookup/swap, metadata-
 * cache probes, channel-controller throughput, trace generation, and
 * a small end-to-end simulation.
 */
#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/event_queue.h"
#include "common/rng.h"
#include "core/remap_table.h"
#include "dram/channel.h"
#include "sim/metadata_cache.h"
#include "sim/runner.h"
#include "sim/simulation.h"
#include "tracking/full_counters.h"
#include "tracking/mea.h"
#include "trace/catalog.h"

namespace {

using namespace mempod;

void
BM_MeaTouch(benchmark::State &state)
{
    MeaTracker mea(static_cast<std::uint32_t>(state.range(0)), 2, 21);
    Rng rng(1);
    std::vector<std::uint64_t> ids(4096);
    for (auto &id : ids)
        id = rng.nextZipf(1 << 20, 1.0);
    std::size_t i = 0;
    for (auto _ : state) {
        mea.touch(ids[i++ & 4095]);
        benchmark::DoNotOptimize(mea.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeaTouch)->Arg(16)->Arg(64)->Arg(512);

void
BM_FullCountersTouch(benchmark::State &state)
{
    FullCounters fc(1 << 22, 16);
    Rng rng(2);
    std::vector<std::uint64_t> ids(4096);
    for (auto &id : ids)
        id = rng.nextBelow(1 << 22);
    std::size_t i = 0;
    for (auto _ : state)
        fc.touch(ids[i++ & 4095]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullCountersTouch);

void
BM_FullCountersTopN(benchmark::State &state)
{
    FullCounters fc(1 << 22, 16);
    Rng rng(3);
    for (int i = 0; i < 200000; ++i)
        fc.touch(rng.nextZipf(1 << 22, 0.9));
    for (auto _ : state)
        benchmark::DoNotOptimize(fc.topN(64));
}
BENCHMARK(BM_FullCountersTopN);

void
BM_RemapLookup(benchmark::State &state)
{
    RemapTable rt(1179648, 131072); // one paper-scale pod
    Rng rng(4);
    for (int i = 0; i < 100000; ++i)
        rt.swap(rng.nextBelow(1179648), rng.nextBelow(1179648));
    std::uint64_t q = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rt.locationOf(q));
        q = (q + 977) % 1179648;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemapLookup);

void
BM_MetadataCacheLookup(benchmark::State &state)
{
    MetadataCache cache(64 * 1024, 8, 4);
    Rng rng(5);
    std::uint64_t q = 0;
    for (auto _ : state) {
        if (!cache.lookup(q))
            cache.fill(q);
        q = rng.nextZipf(1 << 20, 1.0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetadataCacheLookup);

void
BM_EventQueueUniform(benchmark::State &state)
{
    // Steady-state kernel load: a fixed population of events, each
    // re-arming at a uniform DRAM-scale delta (0.2-50 ns), so inserts
    // land across wheel-0/1 slots and every runAll drains hot slots.
    EventQueue eq;
    Rng rng(7);
    std::function<void()> tick = [&] {
        eq.scheduleAfter(200 + rng.nextBelow(50'000), tick);
    };
    for (int i = 0; i < 256; ++i)
        eq.schedule(rng.nextBelow(50'000), tick);
    for (auto _ : state)
        eq.runAll(1024);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueUniform);

void
BM_EventQueueBursty(benchmark::State &state)
{
    // Same-timestamp bursts (a channel completing a queued batch):
    // exercises the one-slot claim-sort-drain path and the FIFO
    // tie-break.
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        const TimePs when = eq.now() + 1'000'000;
        for (int i = 0; i < 256; ++i)
            eq.schedule(when, [&sink] { ++sink; });
        eq.runAll();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_EventQueueBursty);

void
BM_EventQueueFarFuture(benchmark::State &state)
{
    // Interval-timer profile: mostly near events plus a slice beyond
    // the outermost wheel (HMA epochs, samplers), so the overflow
    // ladder and multi-level cascades stay on the measured path.
    EventQueue eq;
    Rng rng(8);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 1024; ++i) {
            const TimePs delta =
                (i & 15) == 0
                    ? EventQueue::kWheelSpanPs + rng.nextBelow(1 << 20)
                    : 200 + rng.nextBelow(2'000'000);
            eq.scheduleAfter(delta, [&sink] { ++sink; });
        }
        eq.runAll();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueFarFuture);

void
BM_ChannelThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        Channel ch(eq, DramSpec::hbm1GHz().withChannelBytes(8_MiB),
                   "bm", 0);
        Rng rng(6);
        for (int i = 0; i < 512; ++i) {
            Request r;
            r.type = rng.nextBool(0.3) ? AccessType::kWrite
                                       : AccessType::kRead;
            r.onComplete = [](TimePs) {};
            ch.enqueue(std::move(r),
                       ChannelAddr{static_cast<std::uint32_t>(
                                       rng.nextBelow(16)),
                                   static_cast<std::int64_t>(
                                       rng.nextBelow(64))});
        }
        eq.runAll();
        benchmark::DoNotOptimize(ch.stats().reads);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ChannelThroughput);

void
BM_ChannelRowHit(benchmark::State &state)
{
    // Streaming profile: long same-row runs on a handful of banks, so
    // nearly every CAS is a row hit and the scheduler lives in pass 1
    // (cached oldest-hit candidates, bus-limited pipelining).
    for (auto _ : state) {
        EventQueue eq;
        Channel ch(eq, DramSpec::hbm1GHz().withChannelBytes(8_MiB),
                   "bm", 0);
        for (int i = 0; i < 512; ++i) {
            Request r;
            r.onComplete = [](TimePs) {};
            ch.enqueue(std::move(r),
                       ChannelAddr{static_cast<std::uint32_t>(
                                       (i / 128) & 3),
                                   static_cast<std::int64_t>(i / 128)});
        }
        eq.runAll();
        benchmark::DoNotOptimize(ch.stats().rowHits);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ChannelRowHit);

void
BM_ChannelRandom(benchmark::State &state)
{
    // Conflict profile: random bank, random row over a large row
    // space, so almost every access precharges and re-activates and
    // the scheduler spends its time in passes 2/3 (closed-bank ACT
    // selection and conflicting PRE).
    for (auto _ : state) {
        EventQueue eq;
        Channel ch(eq, DramSpec::hbm1GHz().withChannelBytes(512_MiB),
                   "bm", 0);
        Rng rng(9);
        for (int i = 0; i < 512; ++i) {
            Request r;
            r.type = rng.nextBool(0.3) ? AccessType::kWrite
                                       : AccessType::kRead;
            r.onComplete = [](TimePs) {};
            ch.enqueue(std::move(r),
                       ChannelAddr{static_cast<std::uint32_t>(
                                       rng.nextBelow(16)),
                                   static_cast<std::int64_t>(
                                       rng.nextBelow(4096))});
        }
        eq.runAll();
        benchmark::DoNotOptimize(ch.stats().rowMisses);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ChannelRandom);

void
BM_TraceGeneration(benchmark::State &state)
{
    GeneratorConfig gc;
    gc.totalRequests = 50000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            WorkloadCatalog::global().build("mix5", gc));
    }
    state.SetItemsProcessed(state.iterations() * gc.totalRequests);
}
BENCHMARK(BM_TraceGeneration);

void
BM_EndToEndMemPod(benchmark::State &state)
{
    GeneratorConfig gc;
    gc.totalRequests = 50000;
    const Trace trace = WorkloadCatalog::global().build("xalanc", gc);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runSimulation(SimConfig::paper(Mechanism::kMemPod), trace));
    }
    state.SetItemsProcessed(state.iterations() * gc.totalRequests);
}
BENCHMARK(BM_EndToEndMemPod);

void
BM_EndToEndMemPodPerf(benchmark::State &state)
{
    // A/B twin of BM_EndToEndMemPod with the host profiler attached:
    // run both (interleaved, same filter) and compare medians to bound
    // the enabled-profiler overhead. The budget is <= 2%; disabled,
    // the instrumentation is a single branch on a null pointer.
    GeneratorConfig gc;
    gc.totalRequests = 50000;
    const Trace trace = WorkloadCatalog::global().build("xalanc", gc);
    SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
    cfg.perfEnabled = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(runSimulation(cfg, trace));
    }
    state.SetItemsProcessed(state.iterations() * gc.totalRequests);
}
BENCHMARK(BM_EndToEndMemPodPerf);

void
BM_BatchRunnerFanOut(benchmark::State &state)
{
    // The harness hot path: a workload x mechanism cross product on
    // the worker pool, traces shared through the keyed cache.
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    GeneratorConfig gc;
    gc.totalRequests = 20000;
    TraceCache cache; // persists across iterations: generation once
    for (auto _ : state) {
        BatchRunner runner({.jobs = jobs, .cache = &cache});
        for (const char *w : {"xalanc", "mcf"}) {
            for (Mechanism m :
                 {Mechanism::kNoMigration, Mechanism::kMemPod}) {
                BatchJob job;
                job.config = SimConfig::paper(m);
                job.workload = w;
                job.gen = gc;
                runner.add(std::move(job));
            }
        }
        benchmark::DoNotOptimize(runner.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 4 * gc.totalRequests);
}
BENCHMARK(BM_BatchRunnerFanOut)->Arg(1)->Arg(2)->Arg(4);

} // namespace

/**
 * Reporter shim: passes everything through to the normal console
 * reporter while recording each benchmark's per-iteration wall time,
 * so the run also lands in BENCH_micro_components.json and the repo's
 * perf trajectory covers the building blocks, not just the figures.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    bool
    ReportContext(const Context &context) override
    {
        return benchmark::ConsoleReporter::ReportContext(context);
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred)
                continue;
            const double iters =
                run.iterations > 0
                    ? static_cast<double>(run.iterations)
                    : 1.0;
            entries.emplace_back(run.benchmark_name(),
                                 run.real_accumulated_time / iters *
                                     1e3);
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    std::vector<std::pair<std::string, double>> entries;
};

int
main(int argc, char **argv)
{
    // Pull out our own flag before google-benchmark sees the argv
    // (it rejects flags it doesn't know).
    std::string bench_out = ".";
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--bench-out" && i + 1 < argc) {
            bench_out = argv[++i];
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    mempod::bench::BenchReport report("micro_components", bench_out);
    for (const auto &[name, wall_ms] : reporter.entries)
        report.addEntry(name, wall_ms);
    const std::string path = report.write();
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    return 0;
}
