/**
 * @file
 * Ablation: migration-candidate filtering. Two knobs DESIGN.md calls
 * out on top of the paper's description: (a) the minimum MEA count a
 * tracked page needs to be migration-worthy (count-1 entries are
 * often one-touch survivors of the last sweep), and (b) the hard cap
 * on migrations per Pod per interval. Both throttle wasted swaps on
 * diffuse workloads at some cost on concentrated ones.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "ablation_candidate_filter: hotness floor + cap");
    banner("Ablation", "migration candidate filtering", opt);

    const auto workloads = opt.sweepWorkloads();
    const std::size_t nw = workloads.size();
    const std::vector<std::uint32_t> min_counts{1, 2, 3};
    const std::vector<std::uint32_t> caps{4, 16, 64};

    auto applyMinCount = [](SimConfig &cfg, std::uint32_t v) {
        cfg.mempod.pod.minHotCount = v;
    };
    auto applyCap = [](SimConfig &cfg, std::uint32_t v) {
        cfg.mempod.pod.maxMigrationsPerInterval = v;
    };

    // One batch: per-workload baselines, then both sweeps.
    BatchRunner runner(runnerOptions(opt));
    for (const auto &w : workloads)
        runner.add(timingJob(SimConfig::paper(Mechanism::kNoMigration),
                             w, opt, "TLM"));
    auto addSweepJobs = [&](const char *tag, auto apply,
                            const std::vector<std::uint32_t> &values) {
        for (const std::uint32_t v : values) {
            for (const auto &w : workloads) {
                SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
                apply(cfg, v);
                runner.add(timingJob(cfg, w, opt,
                                     std::string(tag) + "=" +
                                         std::to_string(v)));
            }
        }
    };
    addSweepJobs("min", applyMinCount, min_counts);
    addSweepJobs("cap", applyCap, caps);
    const std::vector<JobResult> results = runner.runAll();

    std::vector<double> base;
    for (std::size_t i = 0; i < nw; ++i)
        base.push_back(need(results[i]).ammatNs);
    std::size_t idx = nw;

    auto printSweep = [&](const char *what,
                          const std::vector<std::uint32_t> &values) {
        TablePrinter table({what, "norm. AMMAT", "migrations",
                            "data moved (MiB)"});
        for (const std::uint32_t v : values) {
            std::vector<double> norm;
            std::uint64_t migrations = 0;
            double mib = 0;
            for (std::size_t i = 0; i < nw; ++i) {
                const RunResult &r = need(results[idx++]);
                norm.push_back(r.ammatNs / base[i]);
                migrations += r.migration.migrations;
                mib += r.dataMovedMiB();
            }
            table.addRow({std::to_string(v),
                          TablePrinter::num(mean(norm), 3),
                          std::to_string(migrations),
                          TablePrinter::num(mib, 1)});
        }
        table.print();
        std::printf("\n");
        table.printCsv();
        std::printf("\n");
    };

    std::printf("--- (a) minimum MEA count to migrate (2-bit "
                "counters saturate at 3) ---\n");
    printSweep("min count", min_counts);

    std::printf("--- (b) migration cap per Pod per interval ---\n");
    printSweep("cap", caps);

    finishBench("ablation_candidate_filter", opt, results);
    return 0;
}
