/**
 * @file
 * Ablation: migration-candidate filtering. Two knobs DESIGN.md calls
 * out on top of the paper's description: (a) the minimum MEA count a
 * tracked page needs to be migration-worthy (count-1 entries are
 * often one-touch survivors of the last sweep), and (b) the hard cap
 * on migrations per Pod per interval. Both throttle wasted swaps on
 * diffuse workloads at some cost on concentrated ones.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "ablation_candidate_filter: hotness floor + cap");
    banner("Ablation", "migration candidate filtering", opt);

    const auto workloads = opt.sweepWorkloads();
    std::vector<Trace> traces;
    std::vector<double> base;
    for (const auto &w : workloads) {
        traces.push_back(makeTrace(w, opt.timingRequests(), opt.seed));
        base.push_back(
            runSimulation(SimConfig::paper(Mechanism::kNoMigration),
                          traces.back(), w)
                .ammatNs);
    }

    auto sweep = [&](const char *what, auto apply,
                     const std::vector<std::uint32_t> &values) {
        TablePrinter table({what, "norm. AMMAT", "migrations",
                            "data moved (MiB)"});
        for (const std::uint32_t v : values) {
            std::vector<double> norm;
            std::uint64_t migrations = 0;
            double mib = 0;
            for (std::size_t i = 0; i < workloads.size(); ++i) {
                SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
                apply(cfg, v);
                const RunResult r =
                    runSimulation(cfg, traces[i], workloads[i]);
                norm.push_back(r.ammatNs / base[i]);
                migrations += r.migration.migrations;
                mib += r.dataMovedMiB();
            }
            table.addRow({std::to_string(v),
                          TablePrinter::num(mean(norm), 3),
                          std::to_string(migrations),
                          TablePrinter::num(mib, 1)});
        }
        table.print();
        std::printf("\n");
        table.printCsv();
        std::printf("\n");
    };

    std::printf("--- (a) minimum MEA count to migrate (2-bit "
                "counters saturate at 3) ---\n");
    sweep(
        "min count",
        [](SimConfig &cfg, std::uint32_t v) {
            cfg.mempod.pod.minHotCount = v;
        },
        {1, 2, 3});

    std::printf("--- (b) migration cap per Pod per interval ---\n");
    sweep(
        "cap",
        [](SimConfig &cfg, std::uint32_t v) {
            cfg.mempod.pod.maxMigrationsPerInterval = v;
        },
        {4, 16, 64});

    return 0;
}
