/**
 * @file
 * Figure 6: MemPod's page-tracking/migration design space — average
 * AMMAT over all workloads for every (epoch length, MEA counter
 * count) pair. Following the paper's methodology the sweep runs with
 * 16-bit counters and remap caches disabled, isolating the epoch and
 * counter-count effects. The paper's optimum is (50 us, 64 counters),
 * with the best configurations lying on the constant-migration-rate
 * diagonal.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "fig6_design_space: epoch x counters sweep");
    banner("Figure 6", "AMMAT over epoch length x MEA counters", opt);

    const std::vector<TimePs> epochs =
        opt.full ? std::vector<TimePs>{25_us, 50_us, 100_us, 200_us,
                                       300_us, 500_us}
                 : std::vector<TimePs>{25_us, 50_us, 100_us, 200_us};
    const std::vector<std::uint32_t> counters =
        opt.full ? std::vector<std::uint32_t>{16, 32, 64, 128, 256, 512}
                 : std::vector<std::uint32_t>{16, 64, 256};

    const auto workloads = opt.sweepWorkloads();
    std::printf("workloads:");
    for (const auto &w : workloads)
        std::printf(" %s", w.c_str());
    std::printf("\n\n");

    std::vector<std::string> headers{"epoch \\ counters"};
    for (auto k : counters)
        headers.push_back(std::to_string(k));
    TablePrinter table(headers);

    double best = 1e30;
    TimePs best_epoch = 0;
    std::uint32_t best_k = 0;

    // The whole (epoch x counters x workload) grid as one batch; the
    // runner's cache generates each workload's trace exactly once.
    BatchRunner runner(runnerOptions(opt));
    for (const TimePs epoch : epochs) {
        for (const std::uint32_t k : counters) {
            for (const auto &w : workloads) {
                SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
                cfg.mempod.interval = epoch;
                cfg.mempod.pod.meaEntries = k;
                cfg.mempod.pod.meaCounterBits = 16; // per the paper
                runner.add(timingJob(
                    cfg, w, opt,
                    std::to_string(epoch / 1_us) + "us/" +
                        std::to_string(k)));
            }
        }
    }
    const std::vector<JobResult> results = runner.runAll();

    std::size_t idx = 0;
    for (const TimePs epoch : epochs) {
        std::vector<std::string> row{
            TablePrinter::num(static_cast<double>(epoch) / 1_us, 0) +
            " us"};
        for (const std::uint32_t k : counters) {
            std::vector<double> ammats;
            for (std::size_t i = 0; i < workloads.size(); ++i)
                ammats.push_back(need(results[idx++]).ammatNs);
            const double avg = mean(ammats);
            if (avg < best) {
                best = avg;
                best_epoch = epoch;
                best_k = k;
            }
            row.push_back(TablePrinter::num(avg, 2));
        }
        table.addRow(std::move(row));
    }

    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf("\nbest configuration: %.0f us epochs, %u counters "
                "(avg AMMAT %.2f ns)\npaper: optimum at 50 us / 64 "
                "counters; minima lie on the constant-migration-rate "
                "diagonal.\n",
                static_cast<double>(best_epoch) / 1_us, best_k, best);
    finishBench("fig6_design_space", opt, results);
    return 0;
}
