/**
 * @file
 * Figure 7: MEA counter width (in bits) vs AMMAT normalized to the
 * 2-bit configuration (primary axis) and average migrations per Pod
 * per interval (secondary axis), at the paper's two operating points:
 * (a) 50 us epochs with 64 counters — where 2-bit counters win
 * because recency dominates at short intervals — and (b) 100 us
 * epochs with 128 counters — where the optimum grows to ~4 bits.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

namespace {

void
runPanel(const char *label, mempod::TimePs epoch, std::uint32_t entries,
         const mempod::bench::Options &opt,
         const std::vector<std::string> &workloads,
         const std::vector<mempod::Trace> &traces)
{
    using namespace mempod;
    using namespace mempod::bench;

    const std::vector<std::uint32_t> widths{1, 2, 4, 8, 16};

    std::printf("--- Figure 7%s: %.0f us epochs, %u counters ---\n",
                label, static_cast<double>(epoch) / 1_us, entries);
    TablePrinter table({"counter bits", "norm. AMMAT (to 2-bit)",
                        "migrations / pod / interval"});

    double baseline2bit = 0.0;
    std::vector<std::pair<double, double>> results;
    for (const std::uint32_t bits : widths) {
        std::vector<double> ammats, migrates;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
            cfg.mempod.interval = epoch;
            cfg.mempod.pod.meaEntries = entries;
            cfg.mempod.pod.meaCounterBits = bits;
            const RunResult r =
                runSimulation(cfg, traces[i], workloads[i]);
            ammats.push_back(r.ammatNs);
            const double per_pod_per_interval =
                r.migration.intervals
                    ? static_cast<double>(r.migration.migrations) /
                          SystemGeometry::paper().numPods /
                          static_cast<double>(r.migration.intervals)
                    : 0.0;
            migrates.push_back(per_pod_per_interval);
        }
        const double avg = mean(ammats);
        if (bits == 2)
            baseline2bit = avg;
        results.push_back({avg, mean(migrates)});
    }

    for (std::size_t i = 0; i < widths.size(); ++i) {
        table.addRow(
            {std::to_string(widths[i]),
             TablePrinter::num(results[i].first / baseline2bit, 4),
             TablePrinter::num(results[i].second, 1)});
    }
    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "fig7_counter_size: counter width sensitivity");
    banner("Figure 7", "counter size vs normalized AMMAT + migrations",
           opt);

    const auto workloads = opt.sweepWorkloads();
    std::vector<Trace> traces;
    for (const auto &w : workloads)
        traces.push_back(makeTrace(w, opt.timingRequests(), opt.seed));

    runPanel("a", 50_us, 64, opt, workloads, traces);
    runPanel("b", 100_us, 128, opt, workloads, traces);

    std::printf("paper: at (50 us, 64) 2-bit counters are best (small "
                "margins, recency matters most); at (100 us, 128) the "
                "optimum grows toward 4 bits.\n");
    return 0;
}
