/**
 * @file
 * Figure 7: MEA counter width (in bits) vs AMMAT normalized to the
 * 2-bit configuration (primary axis) and average migrations per Pod
 * per interval (secondary axis), at the paper's two operating points:
 * (a) 50 us epochs with 64 counters — where 2-bit counters win
 * because recency dominates at short intervals — and (b) 100 us
 * epochs with 128 counters — where the optimum grows to ~4 bits.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

namespace {

using namespace mempod;
using namespace mempod::bench;

const std::vector<std::uint32_t> kWidths{1, 2, 4, 8, 16};

struct Panel
{
    const char *label;
    TimePs epoch;
    std::uint32_t entries;
};

void
addPanelJobs(BatchRunner &runner, const Panel &panel,
             const Options &opt,
             const std::vector<std::string> &workloads)
{
    for (const std::uint32_t bits : kWidths) {
        for (const auto &w : workloads) {
            SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
            cfg.mempod.interval = panel.epoch;
            cfg.mempod.pod.meaEntries = panel.entries;
            cfg.mempod.pod.meaCounterBits = bits;
            runner.add(timingJob(cfg, w, opt,
                                 std::string("7") + panel.label + "/" +
                                     std::to_string(bits) + "b"));
        }
    }
}

void
printPanel(const Panel &panel, const std::vector<JobResult> &results,
           std::size_t &idx, const std::vector<std::string> &workloads)
{
    std::printf("--- Figure 7%s: %.0f us epochs, %u counters ---\n",
                panel.label, static_cast<double>(panel.epoch) / 1_us,
                panel.entries);
    TablePrinter table({"counter bits", "norm. AMMAT (to 2-bit)",
                        "migrations / pod / interval"});

    double baseline2bit = 0.0;
    std::vector<std::pair<double, double>> rows;
    for (const std::uint32_t bits : kWidths) {
        std::vector<double> ammats, migrates;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const RunResult &r = need(results[idx++]);
            ammats.push_back(r.ammatNs);
            const double per_pod_per_interval =
                r.migration.intervals
                    ? static_cast<double>(r.migration.migrations) /
                          SystemGeometry::paper().numPods /
                          static_cast<double>(r.migration.intervals)
                    : 0.0;
            migrates.push_back(per_pod_per_interval);
        }
        const double avg = mean(ammats);
        if (bits == 2)
            baseline2bit = avg;
        rows.push_back({avg, mean(migrates)});
    }

    for (std::size_t i = 0; i < kWidths.size(); ++i) {
        table.addRow(
            {std::to_string(kWidths[i]),
             TablePrinter::num(rows[i].first / baseline2bit, 4),
             TablePrinter::num(rows[i].second, 1)});
    }
    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(
        argc, argv, "fig7_counter_size: counter width sensitivity");
    banner("Figure 7", "counter size vs normalized AMMAT + migrations",
           opt);

    const auto workloads = opt.sweepWorkloads();
    const std::vector<Panel> panels = {{"a", 50_us, 64},
                                       {"b", 100_us, 128}};

    // Both panels share the workload traces and run as one batch.
    BatchRunner runner(runnerOptions(opt));
    for (const Panel &p : panels)
        addPanelJobs(runner, p, opt, workloads);
    const std::vector<JobResult> results = runner.runAll();

    std::size_t idx = 0;
    for (const Panel &p : panels)
        printPanel(p, results, idx, workloads);

    std::printf("paper: at (50 us, 64) 2-bit counters are best (small "
                "margins, recency matters most); at (100 us, 128) the "
                "optimum grows toward 4 bits.\n");
    finishBench("fig7_counter_size", opt, results);
    return 0;
}
