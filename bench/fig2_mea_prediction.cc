/**
 * @file
 * Figure 2: MEA vs Full Counters *prediction* accuracy — hits on the
 * next interval's top three page tiers, averaged per interval, for
 * homogeneous (WL-HG), mixed (WL-MIX) and all (WL-ALL) workloads.
 * The paper's headline: MEA beats FC by 16% / 81% / 68% on the three
 * tiers on average, because MEA blends access counting with temporal
 * recency.
 */
#include <cstdio>

#include "analysis/interval_study.h"
#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "fig2_mea_prediction: next-interval prediction");
    banner("Figure 2", "MEA vs FC future-hit prediction accuracy", opt);

    IntervalStudyConfig study;

    TablePrinter table({"group", "scheme", "hits 1-10", "hits 11-20",
                        "hits 21-30"});

    const auto workloads = opt.suiteWorkloads();
    BatchRunner runner(runnerOptions(opt));
    for (const auto &name : workloads)
        runner.add(studyJob(study, name, opt));
    const std::vector<JobResult> results = runner.runAll();

    std::vector<double> mea_hg[3], mea_mix[3], fc_hg[3], fc_mix[3];
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        const IntervalStudyResult &r = needStudy(results[w]);
        const bool homog =
            WorkloadCatalog::global().find(name).homogeneous;
        for (int t = 0; t < 3; ++t) {
            (homog ? mea_hg : mea_mix)[t].push_back(
                r.meaPredictionHits[t]);
            (homog ? fc_hg : fc_mix)[t].push_back(r.fcPredictionHits[t]);
        }
    }

    auto addGroup = [&](const char *label, std::vector<double> *mea_a,
                        std::vector<double> *mea_b,
                        std::vector<double> *fc_a,
                        std::vector<double> *fc_b) {
        std::vector<double> m[3], f[3];
        for (int t = 0; t < 3; ++t) {
            m[t].insert(m[t].end(), mea_a[t].begin(), mea_a[t].end());
            f[t].insert(f[t].end(), fc_a[t].begin(), fc_a[t].end());
            if (mea_b) {
                m[t].insert(m[t].end(), mea_b[t].begin(),
                            mea_b[t].end());
                f[t].insert(f[t].end(), fc_b[t].begin(), fc_b[t].end());
            }
        }
        table.addRow({label, "MEA", TablePrinter::num(mean(m[0]), 2),
                      TablePrinter::num(mean(m[1]), 2),
                      TablePrinter::num(mean(m[2]), 2)});
        table.addRow({label, "FC", TablePrinter::num(mean(f[0]), 2),
                      TablePrinter::num(mean(f[1]), 2),
                      TablePrinter::num(mean(f[2]), 2)});
        if (mean(f[0]) > 0) {
            std::printf("%s: MEA/FC advantage per tier: %+.0f%% %+.0f%% "
                        "%+.0f%%\n",
                        label,
                        100 * (mean(m[0]) / mean(f[0]) - 1),
                        100 * (mean(m[1]) / std::max(1e-9, mean(f[1])) -
                               1),
                        100 * (mean(m[2]) / std::max(1e-9, mean(f[2])) -
                               1));
        }
    };
    addGroup("WL-HG", mea_hg, nullptr, fc_hg, nullptr);
    addGroup("WL-MIX", mea_mix, nullptr, fc_mix, nullptr);
    addGroup("WL-ALL", mea_hg, mea_mix, fc_hg, fc_mix);

    std::printf("\n");
    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf("\npaper: MEA achieves more future hits than FC by 16%%, "
                "81%% and 68%% on the three tiers.\n");
    finishBench("fig2_mea_prediction", opt, results);
    return 0;
}
