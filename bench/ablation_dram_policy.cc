/**
 * @file
 * Ablation: DRAM controller policy under migration. The libquantum
 * row-buffer observation (Section 6.3.2) depends on open-page
 * management: co-locating simultaneously-hot pages only pays because
 * rows stay latched. We sweep page policy (open vs closed) and
 * scheduler (FR-FCFS vs FCFS) for the no-migration baseline and for
 * MemPod, reporting AMMAT and row-hit rates.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "ablation_dram_policy: page policy + scheduler");
    banner("Ablation", "controller policy under migration", opt);

    const auto workloads = opt.sweepWorkloads();

    struct Policy
    {
        const char *label;
        ControllerPolicy pol;
    };
    const std::vector<Policy> policies = {
        {"open + FR-FCFS", {}},
        {"open + FCFS", {.fcfs = true}},
        {"closed + FR-FCFS", {.closedPage = true}},
        {"closed + FCFS", {.closedPage = true, .fcfs = true}},
    };

    TablePrinter table({"policy", "TLM AMMAT (ns)", "TLM row-hit %",
                        "MemPod AMMAT (ns)", "MemPod row-hit %",
                        "MemPod gain %"});

    BatchRunner runner(runnerOptions(opt));
    for (const auto &p : policies) {
        for (const auto &w : workloads) {
            SimConfig base = SimConfig::paper(Mechanism::kNoMigration);
            base.controller = p.pol;
            SimConfig pod = SimConfig::paper(Mechanism::kMemPod);
            pod.controller = p.pol;
            runner.add(timingJob(base, w, opt,
                                 std::string("TLM/") + p.label));
            runner.add(timingJob(pod, w, opt,
                                 std::string("MemPod/") + p.label));
        }
    }
    const std::vector<JobResult> results = runner.runAll();

    std::size_t idx = 0;
    for (const auto &p : policies) {
        double tlm_ammat = 0, tlm_hits = 0, pod_ammat = 0,
               pod_hits = 0;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const RunResult &rb = need(results[idx++]);
            const RunResult &rp = need(results[idx++]);
            tlm_ammat += rb.ammatNs;
            tlm_hits += rb.rowHitRate;
            pod_ammat += rp.ammatNs;
            pod_hits += rp.rowHitRate;
        }
        const auto n = static_cast<double>(workloads.size());
        table.addRow({p.label, TablePrinter::num(tlm_ammat / n, 1),
                      TablePrinter::num(100 * tlm_hits / n, 1),
                      TablePrinter::num(pod_ammat / n, 1),
                      TablePrinter::num(100 * pod_hits / n, 1),
                      TablePrinter::num(
                          100 * (1 - pod_ammat / tlm_ammat), 1)});
    }

    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf("\nExpect: open-page + FR-FCFS (the paper's setup) has "
                "the best absolute AMMAT; closed-page erases most of "
                "the row-hit benefit of co-locating hot pages.\n");
    finishBench("ablation_dram_policy", opt, results);
    return 0;
}
