/**
 * @file
 * Ablation: the number of Pods (Section 5.1). One Pod is equivalent to
 * a centralized migration controller with any-to-any flexibility but a
 * single serial migration driver; more Pods trade flexibility for
 * parallel migration and less global traffic. The paper's design
 * point is 4 (one per slow-memory channel). We sweep 1 / 2 / 4 and
 * report AMMAT, migration counts, blocked-demand counts and the
 * drain parallelism.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt =
        parseOptions(argc, argv, "ablation_pods: pod-count sweep");
    banner("Ablation", "Pod count (1 = centralized ... 4 = paper)", opt);

    const auto workloads = opt.sweepWorkloads();
    const std::vector<std::uint32_t> pod_counts{1, 2, 4};
    TablePrinter table({"pods", "norm. AMMAT", "migrations",
                        "blocked demands", "per-pod data (MiB)"});

    BatchRunner runner(runnerOptions(opt));
    for (const auto &w : workloads)
        runner.add(timingJob(SimConfig::paper(Mechanism::kNoMigration),
                             w, opt, "TLM"));
    for (const std::uint32_t pods : pod_counts) {
        for (const auto &w : workloads) {
            SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
            cfg.geom.numPods = pods;
            runner.add(timingJob(cfg, w, opt,
                                 std::to_string(pods) + "-pod"));
        }
    }
    const std::vector<JobResult> results = runner.runAll();

    const std::size_t nw = workloads.size();
    std::vector<double> base;
    for (std::size_t i = 0; i < nw; ++i)
        base.push_back(need(results[i]).ammatNs);
    std::size_t idx = nw;

    for (const std::uint32_t pods : pod_counts) {
        std::vector<double> norm;
        std::uint64_t migrations = 0, blocked = 0;
        double data_mib = 0;
        for (std::size_t i = 0; i < nw; ++i) {
            const RunResult &r = need(results[idx++]);
            norm.push_back(r.ammatNs / base[i]);
            migrations += r.migration.migrations;
            blocked += r.migration.blockedRequests;
            data_mib += r.dataMovedMiB();
        }
        table.addRow({std::to_string(pods),
                      TablePrinter::num(mean(norm), 3),
                      std::to_string(migrations),
                      std::to_string(blocked),
                      TablePrinter::num(data_mib / pods, 1)});
    }

    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf(
        "\nObservations to look for: one Pod serializes every swap\n"
        "behind one driver (higher blocked counts); four Pods split\n"
        "migration traffic ~4x per driver and migrate in parallel,\n"
        "at a small flexibility cost (no inter-pod migration).\n");
    finishBench("ablation_pods", opt, results);
    return 0;
}
