#include "bench_util.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include <algorithm>

#include "common/log.h"
#include "sim/stats_writer.h"
#include "trace/generator.h"

namespace mempod::bench {

namespace {

/** Harness start, stamped in parseOptions; total-wall reference. */
std::uint64_t g_harnessStartNs = 0;

/** Value below which fraction `q` of `sorted` falls (linear interp). */
double
quantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        const std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            if (start < s.size())
                out.push_back(s.substr(start));
            break;
        }
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

void
listWorkloads()
{
    const WorkloadCatalog &cat = WorkloadCatalog::global();
    std::printf("homogeneous (8 copies of one benchmark):\n ");
    for (const auto &name : cat.homogeneousNames())
        std::printf(" %s", name.c_str());
    std::printf("\n\nmixed (Table 3, normalized to 8 cores):\n");
    for (const auto &name : cat.mixedNames()) {
        const CatalogEntry &e = cat.find(name);
        if (e.kind == CatalogEntry::Kind::kExternal)
            continue; // listed below with its source
        std::printf("  %-6s:", name.c_str());
        for (const auto &b : e.synthetic.benchmarks)
            std::printf(" %s", b.c_str());
        std::printf("\n");
    }
    bool headed = false;
    for (const auto &name : cat.names()) {
        const CatalogEntry &e = cat.find(name);
        if (e.kind != CatalogEntry::Kind::kExternal)
            continue;
        if (!headed) {
            std::printf("\nexternal traces (from --manifest):\n");
            headed = true;
        }
        std::printf("  %-12s %s (%zu file%s)\n", name.c_str(),
                    e.external.format.c_str(), e.external.files.size(),
                    e.external.files.size() == 1 ? "" : "s");
    }
}

/** Strict decimal parse; exits(2) on trailing garbage or overflow. */
std::uint64_t
parseUint(const char *what, const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "%s: %s expects an unsigned integer, got "
                             "'%s'\n",
                     what, flag, text);
        std::exit(2);
    }
    return v;
}

} // namespace

Options
parseOptions(int argc, char **argv, const char *what)
{
    if (g_harnessStartNs == 0)
        g_harnessStartNs = perfNowNs();
    Options opt;
    std::string emit_list;
    bool emit_given = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", what,
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--full") {
            opt.full = true;
        } else if (arg == "--requests") {
            opt.requests = parseUint(what, "--requests", next());
        } else if (arg == "--seed") {
            opt.seed = parseUint(what, "--seed", next());
        } else if (arg == "--jobs") {
            const std::uint64_t n = parseUint(what, "--jobs", next());
            if (n == 0 || n > 1024) {
                std::fprintf(stderr,
                             "%s: --jobs must be in [1, 1024], got "
                             "%llu\n",
                             what, static_cast<unsigned long long>(n));
                std::exit(2);
            }
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--shards") {
            const std::uint64_t n =
                parseUint(what, "--shards", next());
            if (n > 1024) {
                std::fprintf(stderr,
                             "%s: --shards must be in [0, 1024], got "
                             "%llu\n",
                             what, static_cast<unsigned long long>(n));
                std::exit(2);
            }
            opt.shards = static_cast<std::uint32_t>(n);
        } else if (arg == "--workloads") {
            opt.workloads = splitCommas(next());
        } else if (arg == "--manifest") {
            const char *path = next();
            // Load immediately: later flags (--list-workloads, the
            // --workloads validation below) see the external traces.
            WorkloadCatalog::global().loadManifest(path);
            opt.manifests.push_back(path);
        } else if (arg == "--out") {
            opt.artifacts.root = next();
            if (opt.artifacts.root.empty()) {
                std::fprintf(stderr, "%s: --out needs a directory\n",
                             what);
                std::exit(2);
            }
        } else if (arg == "--emit") {
            emit_list = next();
            emit_given = true;
            std::string bad;
            if (!applyEmitList(emit_list, opt.artifacts, &bad)) {
                std::fprintf(stderr,
                             "%s: --emit: unknown artifact kind '%s' "
                             "(use stats,traces,decisions,perf)\n",
                             what, bad.c_str());
                std::exit(2);
            }
            if (opt.artifacts.perf)
                opt.perf = true; // a perf sidecar implies profiling
        } else if (arg == "--interval-us") {
            opt.intervalUs = parseUint(what, "--interval-us", next());
        } else if (arg == "--trace-sample") {
            opt.traceSample =
                parseUint(what, "--trace-sample", next());
            if (opt.traceSample == 0) {
                std::fprintf(stderr,
                             "%s: --trace-sample must be >= 1 (1 = "
                             "trace every request)\n",
                             what);
                std::exit(2);
            }
        } else if (arg == "--perf") {
            opt.perf = true;
        } else if (arg == "--fidelity") {
            opt.fidelity = next();
            if (opt.fidelity != "detailed" && opt.fidelity != "fast" &&
                opt.fidelity != "sampled") {
                std::fprintf(stderr,
                             "%s: --fidelity must be detailed, fast "
                             "or sampled, got '%s'\n",
                             what, opt.fidelity.c_str());
                std::exit(2);
            }
        } else if (arg == "--set") {
            const std::string kv = next();
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr,
                             "%s: --set expects key=value, got '%s'\n",
                             what, kv.c_str());
                std::exit(2);
            }
            opt.sets.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        } else if (arg == "--paranoid") {
            opt.paranoid = true;
        } else if (arg == "--bench-out") {
            opt.benchOut = next();
            if (opt.benchOut.empty()) {
                std::fprintf(stderr,
                             "%s: --bench-out needs a directory\n",
                             what);
                std::exit(2);
            }
        } else if (arg == "--list-workloads") {
            listWorkloads();
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "%s\noptions: --full | --requests N | --seed N |"
                " --jobs N | --shards N | --workloads a,b,c |"
                " --manifest FILE |"
                " --out DIR | --emit stats,traces,decisions,perf |"
                " --interval-us N | --trace-sample N | --perf |"
                " --fidelity detailed|fast|sampled | --set key=value |"
                " --paranoid | --bench-out DIR | --list-workloads\n",
                what);
            std::exit(0);
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", what,
                         arg.c_str());
            std::exit(2);
        }
    }
    for (const auto &w : opt.workloads)
        WorkloadCatalog::global().find(w); // fatal on typo, up front
    if (emit_given && !opt.artifacts.enabled()) {
        std::fprintf(stderr, "%s: --emit requires --out DIR\n", what);
        std::exit(2);
    }
    if (opt.artifacts.enabled())
        ensureWritableDir(opt.artifacts.root, "--out", what);
    if (opt.benchOut != ".")
        ensureWritableDir(opt.benchOut, "--bench-out", what);
    return opt;
}

void
ensureWritableDir(const std::string &dir, const char *flag,
                  const char *what)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "%s: %s: cannot create directory '%s': "
                             "%s\n",
                     what, flag, dir.c_str(), ec.message().c_str());
        std::exit(2);
    }
    // create_directories succeeds silently when `dir` already exists —
    // even as a plain file; a write probe catches that and read-only
    // mounts in one check.
    if (!std::filesystem::is_directory(dir, ec) || ec) {
        std::fprintf(stderr, "%s: %s: '%s' is not a directory\n", what,
                     flag, dir.c_str());
        std::exit(2);
    }
    const std::string probe = dir + "/.write-probe";
    std::FILE *f = std::fopen(probe.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "%s: %s: directory '%s' is not writable: "
                             "%s\n",
                     what, flag, dir.c_str(), std::strerror(errno));
        std::exit(2);
    }
    std::fclose(f);
    std::filesystem::remove(probe, ec);
}

std::vector<std::string>
Options::sweepWorkloads() const
{
    if (!workloads.empty())
        return workloads;
    if (full)
        return WorkloadCatalog::global().names();
    return WorkloadCatalog::representativeNames();
}

std::vector<std::string>
Options::suiteWorkloads() const
{
    if (!workloads.empty())
        return workloads;
    return WorkloadCatalog::global().names();
}

TraceCache &
traceCache()
{
    static TraceCache cache;
    return cache;
}

std::shared_ptr<const TraceStore>
makeTrace(const std::string &workload, std::uint64_t requests,
          std::uint64_t seed)
{
    GeneratorConfig gc;
    gc.totalRequests = requests;
    gc.seed = seed;
    return traceCache().get(workload, gc);
}

RunnerOptions
runnerOptions(const Options &opt)
{
    RunnerOptions ro;
    ro.jobs = opt.jobs;
    ro.progress = true;
    ro.cache = &traceCache();
    ro.artifacts = opt.artifacts;
    return ro;
}

BatchJob
timingJob(const SimConfig &config, const std::string &workload,
          const Options &opt, std::string label)
{
    BatchJob job;
    job.kind = JobKind::kTiming;
    job.config = config;
    job.config.shards = opt.shards;
    job.config.statsIntervalPs = opt.statsIntervalPs();
    job.config.tracer.enabled = opt.artifacts.wantTraces();
    job.config.tracer.sampleEvery = opt.traceSample;
    job.config.tracer.seed = opt.seed;
    job.config.perfEnabled = opt.perf;
    job.config.validateParanoid = opt.paranoid;
    // Fidelity first, then --set, so window lengths etc. can fine-tune
    // the mode a run selected.
    if (opt.fidelity == "fast")
        job.config.set("dram.model", "fast");
    else if (opt.fidelity == "sampled")
        job.config.set("sim.sampling.enabled", "true");
    for (const auto &[key, value] : opt.sets)
        job.config.set(key, value);
    job.workload = workload;
    job.gen.totalRequests = opt.timingRequests();
    job.gen.seed = opt.seed;
    job.label = std::move(label);
    return job;
}

BatchJob
studyJob(const IntervalStudyConfig &study, const std::string &workload,
         const Options &opt)
{
    BatchJob job;
    job.kind = JobKind::kIntervalStudy;
    job.study = study;
    job.workload = workload;
    job.gen.totalRequests = opt.offlineRequests();
    job.gen.seed = opt.seed;
    return job;
}

const RunResult &
need(const JobResult &r)
{
    if (!r.ok)
        MEMPOD_FATAL("job %s/%s failed: %s", r.label.c_str(),
                     r.workload.c_str(), r.error.c_str());
    return r.result;
}

const IntervalStudyResult &
needStudy(const JobResult &r)
{
    if (!r.ok)
        MEMPOD_FATAL("study job %s failed: %s", r.workload.c_str(),
                     r.error.c_str());
    return r.study;
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

void
banner(const char *figure, const char *caption, const Options &opt)
{
    std::printf("=== %s — %s ===\n", figure, caption);
    std::printf("mode: %s (use --full for the paper-scale sweep)\n\n",
                opt.full ? "FULL" : "reduced");
}

BenchReport::BenchReport(std::string name, std::string out_dir)
    : name_(std::move(name)), dir_(std::move(out_dir))
{
}

void
BenchReport::addResults(const std::vector<JobResult> &results)
{
    for (const JobResult &r : results) {
        if (!r.ok)
            continue;
        jobWallSeconds_.push_back(r.wallSeconds);
        events_ += r.result.eventsExecuted;
        simulatedPs_ += r.result.simulatedPs;
        const std::string entry =
            r.label.empty() ? r.workload : r.label + "/" + r.workload;
        entries_.emplace_back(entry, r.wallSeconds * 1e3);
        if (r.hasPerf) {
            mergedPerf_.merge(r.perf);
            havePerf_ = true;
        }
    }
}

void
BenchReport::addEntry(const std::string &name, double wall_ms)
{
    jobWallSeconds_.push_back(wall_ms / 1e3);
    entries_.emplace_back(name, wall_ms);
}

std::string
BenchReport::write()
{
    const PerfHostInfo host = perfHostInfo();
    std::vector<double> sorted = jobWallSeconds_;
    std::sort(sorted.begin(), sorted.end());
    double total_wall = 0.0;
    for (const double w : jobWallSeconds_)
        total_wall += w;
    const double harness_wall =
        g_harnessStartNs
            ? static_cast<double>(perfNowNs() - g_harnessStartNs) / 1e9
            : total_wall;

    std::string out;
    out.reserve(4 * 1024);
    const auto key_str = [&out](const char *k, const std::string &v) {
        out += '"';
        out += k;
        out += "\":\"";
        out += StatsWriter::jsonEscape(v);
        out += '"';
    };
    const auto key_num = [&out](const char *k, double v) {
        out += '"';
        out += k;
        out += "\":";
        out += StatsWriter::formatDouble(v);
    };
    out += "{\n  ";
    key_str("schema", "mempod-bench-v1");
    out += ",\n  ";
    key_str("name", name_);
    out += ",\n  \"host\": {";
    key_str("sysname", host.sysname);
    out += ',';
    key_str("machine", host.machine);
    out += ',';
    key_num("cpus", host.cpus);
    out += "},\n  ";
    key_num("jobs", static_cast<double>(jobWallSeconds_.size()));
    out += ",\n  \"wall_seconds\": {";
    key_num("total", harness_wall);
    out += ',';
    key_num("sum", total_wall);
    out += ',';
    key_num("median", quantile(sorted, 0.50));
    out += ',';
    key_num("p10", quantile(sorted, 0.10));
    out += ',';
    key_num("p90", quantile(sorted, 0.90));
    out += "},\n  ";
    key_num("events_executed", static_cast<double>(events_));
    out += ",\n  ";
    key_num("events_per_second",
            total_wall > 0 ? static_cast<double>(events_) / total_wall
                           : 0.0);
    out += ",\n  ";
    // Fidelity-fair throughput: simulated milliseconds retired per
    // host second (events/s rewards models that spend *more* events
    // per request). Wall-clock based, so noisy on shared runners.
    key_num("sim_ms_per_second",
            total_wall > 0
                ? static_cast<double>(simulatedPs_) / 1e9 / total_wall
                : 0.0);
    out += ",\n  ";
    // Simulation cost: events executed per simulated millisecond — a
    // pure function of the configs and traces, so byte-deterministic
    // across hosts. The sampled-speedup CI gate compares this leaf
    // (perf_tool diff --require-speedup): sampling's whole point is
    // retiring the same simulated time in ~10x fewer events.
    key_num("events_per_sim_ms",
            simulatedPs_ > 0
                ? static_cast<double>(events_) /
                      (static_cast<double>(simulatedPs_) / 1e9)
                : 0.0);
    out += ",\n  \"phases_ns\": {";
    bool first = true;
    for (const auto &[phase, ns] : mergedPerf_.phasesNs) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += StatsWriter::jsonEscape(phase);
        out += "\":";
        out += StatsWriter::formatDouble(static_cast<double>(ns));
    }
    out += "},\n  \"benchmarks\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (i)
            out += ',';
        out += "\n    {";
        key_str("name", entries_[i].first);
        out += ',';
        key_num("wall_ms", entries_[i].second);
        out += '}';
    }
    out += entries_.empty() ? "]\n}\n" : "\n  ]\n}\n";

    const std::string path = dir_ + "/BENCH_" + name_ + ".json";
    StatsWriter::writeFile(path, out);
    return path;
}

void
finishBench(const char *name, const Options &opt,
            const std::vector<JobResult> &results)
{
    BenchReport report(name, opt.benchOut);
    report.addResults(results);
    const std::string path = report.write();
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    if (opt.perf && report.havePerf())
        report.mergedPerf().printTable(stderr, name);
}

} // namespace mempod::bench
