/**
 * @file
 * Figure 9: bookkeeping-cache sensitivity. MemPod (remap-table cache,
 * split across its four Pods), THM (segment-state cache) and HMA
 * (counter cache) run with 16, 32 and 64 kB caches whose misses
 * inject blocking reads into the request stream; AMMAT is normalized
 * to the no-migration two-level memory. The paper reports MemPod at
 * 4/7/9% improvement over TLM with 16/32/64 kB, still ahead of the
 * others, and HMA's counterintuitive benefit from *smaller* caches.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "fig9_cache_sensitivity: metadata cache sweep");
    banner("Figure 9", "AMMAT vs bookkeeping cache size (norm. to TLM)",
           opt);

    const auto workloads = opt.sweepWorkloads();
    const std::vector<std::uint64_t> sizes{16 * 1024, 32 * 1024,
                                           64 * 1024};
    const std::vector<Mechanism> mechanisms{
        Mechanism::kMemPod, Mechanism::kThm, Mechanism::kHma};

    auto makeCfg = [&](Mechanism m, std::uint64_t cache_bytes,
                       bool enabled) {
        SimConfig cfg = SimConfig::paper(m);
        if (m == Mechanism::kHma)
            cfg.scaleHmaEpoch(40.0);
        switch (m) {
          case Mechanism::kMemPod:
            cfg.mempod.pod.metaCacheEnabled = enabled;
            // The cache capacity is distributed over the four Pods.
            cfg.mempod.pod.metaCacheBytes =
                cache_bytes / cfg.geom.numPods;
            break;
          case Mechanism::kHma:
            cfg.hma.metaCacheEnabled = enabled;
            cfg.hma.metaCacheBytes = cache_bytes;
            break;
          case Mechanism::kThm:
            cfg.thm.metaCacheEnabled = enabled;
            cfg.thm.metaCacheBytes = cache_bytes;
            break;
          default:
            break;
        }
        return cfg;
    };

    // One batch: per-workload TLM baselines, then per mechanism the
    // cache-free reference plus every cache size.
    BatchRunner runner(runnerOptions(opt));
    for (const auto &w : workloads)
        runner.add(timingJob(SimConfig::paper(Mechanism::kNoMigration),
                             w, opt, "TLM"));
    for (Mechanism m : mechanisms) {
        for (const auto &w : workloads)
            runner.add(timingJob(makeCfg(m, 0, false), w, opt,
                                 std::string(mechanismName(m)) +
                                     "/none"));
        for (const std::uint64_t size : sizes)
            for (const auto &w : workloads)
                runner.add(timingJob(
                    makeCfg(m, size, true), w, opt,
                    std::string(mechanismName(m)) + "/" +
                        std::to_string(size / 1024) + "kB"));
    }
    const std::vector<JobResult> results = runner.runAll();

    const std::size_t nw = workloads.size();
    std::vector<double> base;
    for (std::size_t i = 0; i < nw; ++i)
        base.push_back(need(results[i]).ammatNs);
    std::size_t idx = nw;

    TablePrinter table({"mechanism", "cache", "norm. AMMAT",
                        "impact vs no-cache %", "miss rate %"});

    for (Mechanism m : mechanisms) {
        // Reference: same mechanism with free on-chip metadata.
        std::vector<double> nocache_norm;
        for (std::size_t i = 0; i < nw; ++i)
            nocache_norm.push_back(need(results[idx++]).ammatNs /
                                   base[i]);
        const double ref = mean(nocache_norm);
        table.addRow({mechanismName(m), "none",
                      TablePrinter::num(ref, 3), "0.0", "-"});

        for (const std::uint64_t size : sizes) {
            std::vector<double> norm;
            double hits = 0, misses = 0;
            for (std::size_t i = 0; i < nw; ++i) {
                const RunResult &r = need(results[idx++]);
                norm.push_back(r.ammatNs / base[i]);
                hits += static_cast<double>(r.migration.metaCacheHits);
                misses +=
                    static_cast<double>(r.migration.metaCacheMisses);
            }
            const double avg = mean(norm);
            table.addRow(
                {mechanismName(m),
                 std::to_string(size / 1024) + " kB",
                 TablePrinter::num(avg, 3),
                 TablePrinter::num(100 * (avg - ref) / ref, 1),
                 TablePrinter::num(100 * misses / (hits + misses), 1)});
        }
    }

    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf("\npaper: with 16/32/64 kB MemPod improves 4/7/9%% over "
                "TLM (cache costs it 16/14/12%% vs cache-free) and "
                "stays ahead of THM and HMA.\n");
    finishBench("fig9_cache_sensitivity", opt, results);
    return 0;
}
