/**
 * @file
 * Shared scaffolding for the figure/table harnesses: CLI options
 * (scale control, workload selection), workload-set helpers, and
 * cached trace generation.
 *
 * Every harness accepts:
 *   --full           paper-scale run (all workloads, long traces)
 *   --requests N     trace length override
 *   --workloads a,b  explicit workload list
 *   --list-workloads print the suite (incl. Table 3 mixes) and exit
 *   --seed N         generator seed
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/report.h"
#include "trace/record.h"
#include "trace/workloads.h"

namespace mempod::bench {

/** Parsed harness options. */
struct Options
{
    bool full = false;
    std::uint64_t requests = 0; //!< 0 = pick by mode
    std::uint64_t seed = 42;
    std::vector<std::string> workloads; //!< empty = pick by mode

    /** Trace length for timing simulations. */
    std::uint64_t
    timingRequests() const
    {
        if (requests)
            return requests;
        return full ? 8'000'000 : 800'000;
    }

    /** Trace length for the offline (Section 3) studies. */
    std::uint64_t
    offlineRequests() const
    {
        if (requests)
            return requests;
        return full ? 4'000'000 : 600'000;
    }

    /** Workload set for timing sweeps (small unless --full). */
    std::vector<std::string> sweepWorkloads() const;

    /** Full suite (all 27) unless the user narrowed it. */
    std::vector<std::string> suiteWorkloads() const;
};

/** Parse argv; prints usage and exits on --help / bad input. */
Options parseOptions(int argc, char **argv, const char *what);

/** Build (and memoize on disk is unnecessary — generation is fast). */
Trace makeTrace(const std::string &workload, std::uint64_t requests,
                std::uint64_t seed);

/** Mean of a vector. */
double mean(const std::vector<double> &v);

/** Print the standard harness banner. */
void banner(const char *figure, const char *caption,
            const Options &opt);

} // namespace mempod::bench
