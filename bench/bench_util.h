/**
 * @file
 * Shared scaffolding for the figure/table harnesses: CLI options
 * (scale control, workload selection, worker count), workload-set
 * helpers, the process-wide trace cache, and BatchRunner glue.
 *
 * Every harness accepts:
 *   --full           paper-scale run (all workloads, long traces)
 *   --requests N     trace length override (also caps external traces)
 *   --workloads a,b  explicit workload list
 *   --manifest FILE  load a traces.json corpus manifest; its traces
 *                    become named workloads (an entry reusing a
 *                    synthetic name replays the capture instead of
 *                    generating — record-and-replay)
 *   --list-workloads print the suite (incl. Table 3 mixes and loaded
 *                    external traces) and exit
 *   --seed N         generator seed
 *   --jobs N         worker threads (default: hardware concurrency)
 *   --shards N       intra-simulation PDES shards (sim.shards); 0 =
 *                    serial kernel. Output is byte-identical at any
 *                    value — only host parallelism changes.
 *   --out DIR        run directory for every per-job artifact; fixed
 *                    subdirs stats/ (JSON + JSONL registry exports),
 *                    traces/ (Chrome trace-event JSON), decisions/
 *                    ("mempod-decisions-v1" ledgers) and perf/
 *                    (host-profile sidecars)
 *   --emit LIST      comma list of artifact kinds to write under
 *                    --out (stats,traces,decisions,perf); default
 *                    stats,traces,decisions. "perf" implies --perf.
 *   --interval-us N  JSONL sampling period in simulated µs (default
 *                    50, the migration epoch; 0 = summary JSON only)
 *   --trace-sample N trace 1 in N demand requests (default 64)
 *   --fidelity M     detailed (default) | fast (fixed-latency DRAM
 *                    model, dram.model=fast) | sampled (SMARTS-style
 *                    alternating fidelity, sim.sampling.enabled)
 *   --set key=value  dotted-key config override applied to every
 *                    timing job after --fidelity (repeatable; e.g.
 *                    --set sim.sampling.measure_ps=20000000)
 *   --paranoid       deep invariant scans every epoch (O(pages) remap
 *                    walks); for CI smokes, not perf runs
 *
 * Results are identical at any --jobs value (same seed => same
 * numbers); only wall-clock time changes. The run directory is
 * validated up front (created if missing, probed for writability) so a
 * bad path fails before hours of simulation, not after.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/perf.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "trace/catalog.h"
#include "trace/record.h"

namespace mempod::bench {

/** Parsed harness options. */
struct Options
{
    bool full = false;
    std::uint64_t requests = 0; //!< 0 = pick by mode
    std::uint64_t seed = 42;
    unsigned jobs = 0; //!< worker threads; 0 = hardware concurrency
    std::uint32_t shards = 0; //!< sim.shards; 0 = serial kernel
    std::vector<std::string> workloads; //!< empty = pick by mode
    std::vector<std::string> manifests; //!< traces.json paths loaded
    ArtifactSink artifacts; //!< --out run dir + --emit enable bits
    std::uint64_t intervalUs = 50; //!< JSONL period (µs); 0 = off
    std::uint64_t traceSample = 64; //!< trace 1 in N demand requests
    bool perf = false;      //!< host profiling + one-page table (stderr)
    std::string fidelity = "detailed"; //!< detailed | fast | sampled
    //! dotted-key overrides applied to every timing job, in order
    std::vector<std::pair<std::string, std::string>> sets;
    bool paranoid = false;  //!< deep invariant scans every epoch
    std::string benchOut = "."; //!< where BENCH_<name>.json lands

    /**
     * Sampling period in picoseconds for timing jobs: 0 unless the
     * sink emits stats (the sampler adds events, so it stays off when
     * nobody consumes the records).
     */
    TimePs
    statsIntervalPs() const
    {
        return artifacts.wantStats() ? intervalUs * 1'000'000 : 0;
    }

    /** Trace length for timing simulations. */
    std::uint64_t
    timingRequests() const
    {
        if (requests)
            return requests;
        return full ? 8'000'000 : 800'000;
    }

    /** Trace length for the offline (Section 3) studies. */
    std::uint64_t
    offlineRequests() const
    {
        if (requests)
            return requests;
        return full ? 4'000'000 : 600'000;
    }

    /** Workload set for timing sweeps (small unless --full). */
    std::vector<std::string> sweepWorkloads() const;

    /** Full suite (all 27) unless the user narrowed it. */
    std::vector<std::string> suiteWorkloads() const;
};

/** Parse argv; prints usage and exits on --help / bad input. */
Options parseOptions(int argc, char **argv, const char *what);

/**
 * Create `dir` if missing and prove it is writable by creating and
 * removing a probe file. On any failure prints a clear error naming
 * the flag and exits(2) — output directories must fail fast, before
 * simulations run, not at the first write hours later.
 */
void ensureWritableDir(const std::string &dir, const char *flag,
                       const char *what);

/**
 * The harness-wide trace cache: mutex-guarded, build-once per
 * (workload, requests, seed). Shared by makeTrace() and every runner
 * built via runnerOptions(), so a synthetic trace is never generated
 * twice — and an external trace is never duplicated — even across a
 * harness's separate batches.
 */
TraceCache &traceCache();

/** Fetch/build the shared trace store through the harness cache. */
std::shared_ptr<const TraceStore> makeTrace(const std::string &workload,
                                            std::uint64_t requests,
                                            std::uint64_t seed);

/** RunnerOptions honoring --jobs, progress on stderr, shared cache. */
RunnerOptions runnerOptions(const Options &opt);

/** A timing job at the harness's scale (timingRequests, seed). */
BatchJob timingJob(const SimConfig &config, const std::string &workload,
                   const Options &opt, std::string label = {});

/** An offline interval-study job (offlineRequests, seed). */
BatchJob studyJob(const IntervalStudyConfig &study,
                  const std::string &workload, const Options &opt);

/** Unwrap a timing result; fatal (with job context) on failure. */
const RunResult &need(const JobResult &r);

/**
 * The run's measured AMMAT: the SMARTS window estimate on sampled
 * runs (the full-run average is meaningless there — fast-forwarded
 * demands complete without stall accounting), the exact full-run
 * average otherwise. Figure harnesses normalize with this so every
 * --fidelity mode produces comparable tables.
 */
inline double
measuredAmmat(const RunResult &r)
{
    return r.sampled ? r.sampledAmmatNs : r.ammatNs;
}

/** Unwrap an interval-study result; fatal on failure. */
const IntervalStudyResult &needStudy(const JobResult &r);

/** Mean of a vector. */
double mean(const std::vector<double> &v);

/** Print the standard harness banner. */
void banner(const char *figure, const char *caption,
            const Options &opt);

/**
 * Accumulator behind BENCH_<name>.json ("mempod-bench-v1"): per-job
 * (or per-benchmark) wall times, summed event counts and merged host
 * profiles, rendered with median/p10/p90 wall statistics and host
 * info so the repo accumulates a comparable perf trajectory run over
 * run (tools/perf_tool.cc diffs two of these).
 */
class BenchReport
{
  public:
    BenchReport(std::string name, std::string out_dir);

    /** Fold a harness batch in: wall, events, perf (when enabled). */
    void addResults(const std::vector<JobResult> &results);

    /** One named timing entry (microbenchmark medians etc.). */
    void addEntry(const std::string &name, double wall_ms);

    /** Render + atomically write BENCH_<name>.json; returns the path. */
    std::string write();

    const PerfReport &mergedPerf() const { return mergedPerf_; }
    bool havePerf() const { return havePerf_; }

  private:
    std::string name_;
    std::string dir_;
    std::vector<double> jobWallSeconds_;
    std::vector<std::pair<std::string, double>> entries_;
    std::uint64_t events_ = 0;
    std::uint64_t simulatedPs_ = 0;
    PerfReport mergedPerf_;
    bool havePerf_ = false;
};

/**
 * Standard harness epilogue: write BENCH_<name>.json (always) and,
 * under --perf, print the merged one-page host-profile table to
 * stderr (stdout stays byte-identical to a perf-disabled run).
 */
void finishBench(const char *name, const Options &opt,
                 const std::vector<JobResult> &results);

} // namespace mempod::bench
