/**
 * @file
 * Figure 10: scalability to future, faster memories. The stacked
 * memory is accelerated to a 4 GHz HBM while the off-chip memory only
 * moves to DDR4-2400, widening the latency ratio between the tiers.
 * AMMAT is normalized to a 9 GB DDR4-2400-only configuration; HMA's
 * sort penalty is reduced 40% for the faster future CPU. "HBMoc" is
 * the overclocked-HBM-only bar.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "fig10_scalability: future-system comparison");
    banner("Figure 10",
           "future system (HBM-4GHz + DDR4-2400), norm. to DDR-only",
           opt);

    const auto workloads =
        opt.full ? opt.suiteWorkloads() : opt.sweepWorkloads();

    struct Config
    {
        const char *label;
        SimConfig cfg;
    };
    std::vector<Config> configs;
    configs.push_back({"TLM", SimConfig::future(Mechanism::kNoMigration)});
    configs.push_back({"MemPod", SimConfig::future(Mechanism::kMemPod)});
    {
        SimConfig hma = SimConfig::future(Mechanism::kHma);
        hma.scaleHmaEpoch(40.0);
        // future() already reduced the stall by 40%; keep that ratio.
        hma.hma.sortStall = static_cast<TimePs>(hma.hma.sortStall * 0.6);
        configs.push_back({"HMA", hma});
    }
    configs.push_back({"THM", SimConfig::future(Mechanism::kThm)});
    configs.push_back({"CAMEO", SimConfig::future(Mechanism::kCameo)});
    configs.push_back({"HBMoc", SimConfig::fastOnly(/*future=*/true)});

    TablePrinter table({"workload", "TLM", "MemPod", "HMA", "THM",
                        "CAMEO", "HBMoc"});
    std::vector<std::vector<double>> norms(configs.size());

    BatchRunner runner(runnerOptions(opt));
    for (const auto &name : workloads) {
        runner.add(timingJob(SimConfig::slowOnly(/*future=*/true),
                             name, opt, "DDR-only"));
        for (const auto &c : configs)
            runner.add(timingJob(c.cfg, name, opt, c.label));
    }
    const std::vector<JobResult> results = runner.runAll();
    const std::size_t stride = 1 + configs.size();

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        const double ddr_only = need(results[w * stride]).ammatNs;
        std::vector<std::string> row{name};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const RunResult &r = need(results[w * stride + 1 + c]);
            const double norm = r.ammatNs / ddr_only;
            norms[c].push_back(norm);
            row.push_back(TablePrinter::num(norm, 3));
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> avg{"AVG"};
    for (auto &v : norms)
        avg.push_back(TablePrinter::num(mean(v), 3));
    table.addRow(std::move(avg));

    table.print();
    std::printf("\n");
    table.printCsv();

    const double tlm = mean(norms[0]);
    std::printf("\nimprovement over future TLM: MemPod %.0f%%, HMA "
                "%.0f%%, THM %.0f%%, CAMEO %.0f%%, HBMoc %.0f%%\n",
                100 * (1 - mean(norms[1]) / tlm),
                100 * (1 - mean(norms[2]) / tlm),
                100 * (1 - mean(norms[3]) / tlm),
                100 * (1 - mean(norms[4]) / tlm),
                100 * (1 - mean(norms[5]) / tlm));
    std::printf("paper: MemPod +24%%, THM +13%%, HMA +2%%, CAMEO -1%% "
                "vs TLM; HBMoc is 40%% faster than TLM. MemPod scales "
                "best as the tier latency ratio widens.\n");
    return 0;
}
