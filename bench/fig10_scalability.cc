/**
 * @file
 * Figure 10: scalability to future, faster memories. The stacked
 * memory is accelerated to a 4 GHz HBM while the off-chip memory only
 * moves to DDR4-2400, widening the latency ratio between the tiers.
 * AMMAT is normalized to a 9 GB DDR4-2400-only configuration; HMA's
 * sort penalty is reduced 40% for the faster future CPU. "HBMoc" is
 * the overclocked-HBM-only bar.
 *
 * This harness also hosts the PDES shard-scaling report (the README
 * scaling table): one fig10-sized MemPod run repeated at sim.shards
 * in {1, 2, 4, 8}, with wall-clock medians, the per-shard work split
 * from the executor's counters, and a byte-identity cross-check
 * against the serial kernel.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "sim/parallel.h"
#include "sim/simulation.h"

namespace {

/**
 * The README scaling table: one simulation, many kernel widths. Wall
 * clock is reported as the median of three runs; on a core-limited
 * host the wall column flattens out, so the per-shard event counters
 * carry the scaling claim — they prove each worker owns an even slice
 * of the channel work regardless of how the OS schedules the threads.
 * Determinism is re-checked here, not assumed: every row must
 * reproduce the serial run's AMMAT and executed-event count exactly.
 */
void
shardScalingReport(const mempod::bench::Options &opt)
{
    using namespace mempod;
    using namespace mempod::bench;
    using Clock = std::chrono::steady_clock;

    const char *workload = "mix5";
    const std::uint64_t requests = opt.timingRequests();
    const auto store = makeTrace(workload, requests, opt.seed);
    const SimConfig cfg = SimConfig::future(Mechanism::kMemPod);

    std::printf("\nPDES shard scaling (MemPod future system, %s, "
                "%llu requests, wall = median of 3):\n",
                workload, static_cast<unsigned long long>(requests));

    TablePrinter table({"shards", "wall ms", "speedup", "events",
                        "channel ev", "per-shard min", "per-shard max",
                        "windows", "busy %", "stall %"});

    double serial_ammat = 0.0;
    std::uint64_t serial_events = 0;
    double base_ms = 0.0;
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
        double wall[3];
        RunResult r;
        std::uint64_t per_min = 0, per_max = 0, windows = 0,
                      channel_events = 0;
        std::string busy_col = "-", stall_col = "-";
        for (int rep = 0; rep < 3; ++rep) {
            SimConfig c = cfg;
            c.shards = shards;
            c.perfEnabled = true; // per-shard busy/stall columns
            Simulation sim(c);
            const auto t0 = Clock::now();
            const auto source = store->open();
            r = sim.run(*source, "scaling");
            wall[rep] = std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count();
            const ParallelExecutor *ex = sim.executor();
            const std::vector<std::uint64_t> byDomain =
                ex->perDomainExecuted();
            channel_events = ex->totalExecuted() - byDomain[0];
            per_min = per_max = ex->perShardExecuted(0);
            for (unsigned s = 1; s < ex->shards(); ++s) {
                const std::uint64_t n = ex->perShardExecuted(s);
                per_min = std::min(per_min, n);
                per_max = std::max(per_max, n);
            }
            windows = ex->windows();
            // Host utilization across shards, min..max, from the run's
            // PerfMonitor (PDES load imbalance at a glance).
            if (const PerfReport *pr = sim.perfReport()) {
                double bmin = 100.0, bmax = 0.0;
                for (const PerfReport::Shard &sh : pr->shards) {
                    const double denom =
                        static_cast<double>(sh.busyNs + sh.stallNs);
                    const double b =
                        denom > 0 ? 100.0 *
                                        static_cast<double>(sh.busyNs) /
                                        denom
                                  : 0.0;
                    bmin = std::min(bmin, b);
                    bmax = std::max(bmax, b);
                }
                if (!pr->shards.empty()) {
                    busy_col = TablePrinter::num(bmin, 1) + ".." +
                               TablePrinter::num(bmax, 1);
                    stall_col = TablePrinter::num(100.0 - bmax, 1) +
                                ".." + TablePrinter::num(100.0 - bmin, 1);
                }
            }
        }
        std::sort(wall, wall + 3);
        const double ms = wall[1];

        if (shards == 1) {
            // The shards=1 row *is* the determinism reference: it runs
            // the full PDES machinery (windows, outbox merges) with
            // one worker, so any divergence below is a kernel bug, not
            // thread scheduling.
            serial_ammat = r.ammatNs;
            serial_events = r.eventsExecuted;
            base_ms = ms;
        } else if (r.ammatNs != serial_ammat ||
                   r.eventsExecuted != serial_events) {
            std::fprintf(stderr,
                         "FATAL: shards=%u diverged from shards=1 "
                         "(ammat %.17g vs %.17g, events %llu vs %llu)\n",
                         shards, r.ammatNs, serial_ammat,
                         static_cast<unsigned long long>(
                             r.eventsExecuted),
                         static_cast<unsigned long long>(serial_events));
            std::exit(1);
        }

        table.addRow({std::to_string(shards), TablePrinter::num(ms, 1),
                      TablePrinter::num(base_ms / ms, 2),
                      std::to_string(r.eventsExecuted),
                      std::to_string(channel_events),
                      std::to_string(per_min), std::to_string(per_max),
                      std::to_string(windows), busy_col, stall_col});
    }
    table.print();
    std::printf("all shard counts reproduce the serial kernel "
                "byte-for-byte; on a core-limited host read the "
                "per-shard columns, not the wall clock.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "fig10_scalability: future-system comparison");
    banner("Figure 10",
           "future system (HBM-4GHz + DDR4-2400), norm. to DDR-only",
           opt);

    const auto workloads =
        opt.full ? opt.suiteWorkloads() : opt.sweepWorkloads();

    struct Config
    {
        const char *label;
        SimConfig cfg;
    };
    std::vector<Config> configs;
    configs.push_back({"TLM", SimConfig::future(Mechanism::kNoMigration)});
    configs.push_back({"MemPod", SimConfig::future(Mechanism::kMemPod)});
    {
        SimConfig hma = SimConfig::future(Mechanism::kHma);
        hma.scaleHmaEpoch(40.0);
        // future() already reduced the stall by 40%; keep that ratio.
        hma.hma.sortStall = static_cast<TimePs>(hma.hma.sortStall * 0.6);
        configs.push_back({"HMA", hma});
    }
    configs.push_back({"THM", SimConfig::future(Mechanism::kThm)});
    configs.push_back({"CAMEO", SimConfig::future(Mechanism::kCameo)});
    configs.push_back({"HBMoc", SimConfig::fastOnly(/*future=*/true)});

    TablePrinter table({"workload", "TLM", "MemPod", "HMA", "THM",
                        "CAMEO", "HBMoc"});
    std::vector<std::vector<double>> norms(configs.size());

    BatchRunner runner(runnerOptions(opt));
    for (const auto &name : workloads) {
        runner.add(timingJob(SimConfig::slowOnly(/*future=*/true),
                             name, opt, "DDR-only"));
        for (const auto &c : configs)
            runner.add(timingJob(c.cfg, name, opt, c.label));
    }
    const std::vector<JobResult> results = runner.runAll();
    const std::size_t stride = 1 + configs.size();

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        const double ddr_only = need(results[w * stride]).ammatNs;
        std::vector<std::string> row{name};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const RunResult &r = need(results[w * stride + 1 + c]);
            const double norm = r.ammatNs / ddr_only;
            norms[c].push_back(norm);
            row.push_back(TablePrinter::num(norm, 3));
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> avg{"AVG"};
    for (auto &v : norms)
        avg.push_back(TablePrinter::num(mean(v), 3));
    table.addRow(std::move(avg));

    table.print();
    std::printf("\n");
    table.printCsv();

    const double tlm = mean(norms[0]);
    std::printf("\nimprovement over future TLM: MemPod %.0f%%, HMA "
                "%.0f%%, THM %.0f%%, CAMEO %.0f%%, HBMoc %.0f%%\n",
                100 * (1 - mean(norms[1]) / tlm),
                100 * (1 - mean(norms[2]) / tlm),
                100 * (1 - mean(norms[3]) / tlm),
                100 * (1 - mean(norms[4]) / tlm),
                100 * (1 - mean(norms[5]) / tlm));
    std::printf("paper: MemPod +24%%, THM +13%%, HMA +2%%, CAMEO -1%% "
                "vs TLM; HBMoc is 40%% faster than TLM. MemPod scales "
                "best as the tier latency ratio widens.\n");

    shardScalingReport(opt);
    finishBench("fig10_scalability", opt, results);
    return 0;
}
