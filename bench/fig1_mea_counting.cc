/**
 * @file
 * Figure 1: MEA *counting* accuracy compared to Full Counters on the
 * top three tiers of the past interval (ranks 1-10, 11-20, 21-30),
 * with averages for homogeneous, mixed and all workloads. FC is
 * perfect by construction (it counts exactly); the point of the
 * figure is that MEA is a poor counter (the paper reports <55% on the
 * top tiers on average) yet — per Figure 2 — a better predictor.
 */
#include <cstdio>

#include "analysis/interval_study.h"
#include "bench_util.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv,
        "fig1_mea_counting: past-interval counting accuracy");
    banner("Figure 1", "MEA counting accuracy vs Full Counters", opt);

    IntervalStudyConfig study; // 5500-request intervals, 128 counters

    TablePrinter table({"workload", "type", "MEA 1-10 %", "MEA 11-20 %",
                        "MEA 21-30 %", "FC all tiers %"});

    const auto workloads = opt.suiteWorkloads();
    BatchRunner runner(runnerOptions(opt));
    for (const auto &name : workloads)
        runner.add(studyJob(study, name, opt));
    const std::vector<JobResult> results = runner.runAll();

    std::vector<double> hg[3], mix[3];
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        const IntervalStudyResult &r = needStudy(results[w]);
        const bool homog =
            WorkloadCatalog::global().find(name).homogeneous;
        for (int t = 0; t < 3; ++t)
            (homog ? hg : mix)[t].push_back(
                100 * r.meaCountingAccuracy[t]);
        table.addRow({name, homog ? "HG" : "MIX",
                      TablePrinter::num(100 * r.meaCountingAccuracy[0], 1),
                      TablePrinter::num(100 * r.meaCountingAccuracy[1], 1),
                      TablePrinter::num(100 * r.meaCountingAccuracy[2], 1),
                      "100.0"});
    }

    auto addAvg = [&](const char *label, std::vector<double> *a,
                      std::vector<double> *b) {
        std::vector<double> t0, t1, t2;
        for (auto *src : {a, b}) {
            if (!src)
                continue;
            t0.insert(t0.end(), src[0].begin(), src[0].end());
            t1.insert(t1.end(), src[1].begin(), src[1].end());
            t2.insert(t2.end(), src[2].begin(), src[2].end());
        }
        table.addRow({label, "-", TablePrinter::num(mean(t0), 1),
                      TablePrinter::num(mean(t1), 1),
                      TablePrinter::num(mean(t2), 1), "100.0"});
    };
    addAvg("AVG HG", hg, nullptr);
    addAvg("AVG MIX", mix, nullptr);
    addAvg("AVG ALL", hg, mix);

    table.print();
    std::printf("\n");
    table.printCsv();
    std::printf("\npaper: MEA counting accuracy averages below 55%% on "
                "the top tiers — accurate counting is NOT what MEA is "
                "good at.\n");
    finishBench("fig1_mea_counting", opt, results);
    return 0;
}
