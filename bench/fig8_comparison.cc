/**
 * @file
 * Figure 8: the headline performance comparison — AMMAT of MemPod,
 * HMA, THM, CAMEO and an all-HBM system, normalized to a two-level
 * memory with no migration, per workload plus HG/MIX/ALL averages.
 * Bookkeeping caches are disabled, as in the paper.
 *
 * Scale note: HMA's published 100 ms epoch assumes seconds-long
 * traces. The harness keeps the paper's epoch *ratios* instead
 * (HMA epoch = 40x MemPod's, sort stall = 7% of the epoch — exactly
 * the paper's 7 ms / 100 ms) so reduced traces still span many HMA
 * epochs; see EXPERIMENTS.md.
 */
#include <cstdio>

#include "bench_util.h"
#include "sim/simulation.h"

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt = parseOptions(
        argc, argv, "fig8_comparison: mechanism comparison");
    banner("Figure 8",
           "AMMAT normalized to a no-migration two-level memory", opt);

    const auto workloads =
        opt.full ? opt.suiteWorkloads() : opt.sweepWorkloads();

    struct Config
    {
        const char *label;
        SimConfig cfg;
    };
    std::vector<Config> configs;
    configs.push_back({"MemPod", SimConfig::paper(Mechanism::kMemPod)});
    {
        SimConfig hma = SimConfig::paper(Mechanism::kHma);
        hma.scaleHmaEpoch(40.0); // keep the paper's ratios at any scale
        configs.push_back({"HMA", hma});
    }
    configs.push_back({"THM", SimConfig::paper(Mechanism::kThm)});
    configs.push_back({"CAMEO", SimConfig::paper(Mechanism::kCameo)});
    configs.push_back({"HBM-only", SimConfig::fastOnly()});

    TablePrinter table({"workload", "type", "MemPod", "HMA", "THM",
                        "CAMEO", "HBM-only"});
    TablePrinter traffic({"workload", "MemPod MiB", "per-pod MiB",
                          "HMA MiB", "THM MiB", "CAMEO MiB"});
    TablePrinter attr({"workload", "mechanism", "AMMAT ns", "mshr",
                       "meta", "blocked", "queue", "service", "p50",
                       "p95", "p99"});

    std::vector<std::vector<double>> hg(configs.size()),
        mx(configs.size());

    // One baseline + configs.size() jobs per workload, all parallel.
    BatchRunner runner(runnerOptions(opt));
    for (const auto &name : workloads) {
        runner.add(timingJob(SimConfig::paper(Mechanism::kNoMigration),
                             name, opt, "TLM"));
        for (const auto &c : configs)
            runner.add(timingJob(c.cfg, name, opt, c.label));
    }
    const std::vector<JobResult> results = runner.runAll();
    const std::size_t stride = 1 + configs.size();

    TablePrinter ci({"workload", "mechanism", "AMMAT ns", "+/-95% CI",
                     "windows"});
    bool anySampled = false;

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const std::string &name = workloads[w];
        const double base = measuredAmmat(need(results[w * stride]));
        const bool homog =
            WorkloadCatalog::global().find(name).homogeneous;

        std::vector<std::string> row{name, homog ? "HG" : "MIX"};
        std::vector<std::string> trow{name};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const RunResult &r = need(results[w * stride + 1 + c]);
            const double norm = measuredAmmat(r) / base;
            (homog ? hg : mx)[c].push_back(norm);
            row.push_back(TablePrinter::num(norm, 3));
            if (configs[c].label == std::string("MemPod")) {
                trow.push_back(TablePrinter::num(r.dataMovedMiB(), 1));
                trow.push_back(TablePrinter::num(
                    r.dataMovedMiB() /
                        SystemGeometry::paper().numPods,
                    1));
            } else if (configs[c].label != std::string("HBM-only")) {
                trow.push_back(TablePrinter::num(r.dataMovedMiB(), 1));
            }
        }
        table.addRow(std::move(row));
        traffic.addRow(std::move(trow));

        // Where does each mechanism's AMMAT go? The components are an
        // exact partition of arrival-to-finish, so the five columns sum
        // to the AMMAT column (satellite check: attribution_test.cc).
        for (std::size_t c = 0; c <= configs.size(); ++c) {
            const RunResult &r = need(results[w * stride + c]);
            const char *label = c == 0 ? "TLM" : configs[c - 1].label;
            if (r.sampled) {
                anySampled = true;
                ci.addRow({name, label,
                           TablePrinter::num(r.sampledAmmatNs, 2),
                           TablePrinter::num(r.sampledCiNs, 2),
                           TablePrinter::num(
                               static_cast<double>(r.sampleWindows),
                               0)});
            }
            attr.addRow({name, label, TablePrinter::num(r.ammatNs, 2),
                         TablePrinter::num(r.attribution.mshrWaitNs, 2),
                         TablePrinter::num(r.attribution.metadataNs, 2),
                         TablePrinter::num(r.attribution.blockedNs, 2),
                         TablePrinter::num(r.attribution.queueWaitNs, 2),
                         TablePrinter::num(r.attribution.serviceNs, 2),
                         TablePrinter::num(r.latency.p50Ns, 0),
                         TablePrinter::num(r.latency.p95Ns, 0),
                         TablePrinter::num(r.latency.p99Ns, 0)});
        }
    }

    auto avgRow = [&](const char *label,
                      const std::vector<std::vector<double>> &a,
                      const std::vector<std::vector<double>> *b) {
        std::vector<std::string> row{label, "-"};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            std::vector<double> all = a[c];
            if (b)
                all.insert(all.end(), (*b)[c].begin(), (*b)[c].end());
            row.push_back(TablePrinter::num(mean(all), 3));
        }
        table.addRow(std::move(row));
    };
    avgRow("AVG HG", hg, nullptr);
    avgRow("AVG MIX", mx, nullptr);
    avgRow("AVG ALL", hg, &mx);

    table.print();
    if (anySampled) {
        std::printf("\nsampled AMMAT estimates (Student-t 95%% CI over "
                    "measurement windows; the normalized table above "
                    "uses these means):\n");
        ci.print();
    }
    std::printf("\nmigration traffic (paper: CAMEO 3.9 GB > MemPod "
                "3.1 GB total / 804 MB per pod > THM 865 MB > HMA "
                "578 MB on full-length traces):\n");
    traffic.print();
    std::printf("\nAMMAT attribution (ns per request; mshr+meta+blocked"
                "+queue+service = AMMAT) and request-latency "
                "percentiles (ns):\n");
    attr.print();
    std::printf("\n");
    table.printCsv();
    std::printf("\npaper: MemPod improves AMMAT by 19%% on average over "
                "TLM (normalized 0.81), beats HMA/THM by 9%% on average "
                "and up to 29%%; CAMEO degrades by 41%% (normalized "
                "1.41) at this 1:8 capacity ratio.\n");
    finishBench("fig8_comparison", opt, results);
    return 0;
}
