/**
 * @file
 * Table 1: breakdown of building-block design decisions and their
 * hardware costs for THM, HMA, CAMEO and MemPod, computed from the
 * actual structures instantiated on the paper's 1+8 GB geometry
 * (rather than hard-coded constants). Also prints the Table 2 system
 * configuration for reference.
 */
#include <cstdio>

#include "baselines/cameo.h"
#include "baselines/hma.h"
#include "baselines/thm.h"
#include "bench_util.h"
#include "core/mempod_manager.h"
#include "sim/config.h"

namespace {

std::string
bytesHuman(double bytes)
{
    char buf[64];
    if (bytes >= 1 << 20)
        std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1 << 20));
    else if (bytes >= 1 << 10)
        std::snprintf(buf, sizeof(buf), "%.1f kB", bytes / (1 << 10));
    else
        std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mempod;
    using namespace mempod::bench;

    const Options opt =
        parseOptions(argc, argv, "table1_costs: building-block costs");
    banner("Table 1", "building-block cost breakdown (computed)", opt);

    EventQueue eq;
    MemorySystem mem(eq, SystemGeometry::paper(), DramSpec::hbm1GHz(),
                     DramSpec::ddr4_1600());

    MemPodManager mempod_mgr(eq, mem, MemPodParams{});
    HmaManager hma(eq, mem, HmaParams{});
    ThmManager thm(eq, mem, ThmParams{});
    CameoManager cameo(eq, mem, CameoParams{});

    TablePrinter table({"challenge", "THM", "HMA", "CAMEO", "MemPod"});
    table.addRow({"page relocation", "1 candidate/segment",
                  "no restrictions", "1 candidate/group",
                  "intra-pod any-to-any"});
    table.addRow(
        {"remap table size",
         bytesHuman(static_cast<double>(thm.remapStorageBits()) / 8),
         "none (OS page tables)",
         bytesHuman(static_cast<double>(cameo.remapStorageBits()) / 8),
         bytesHuman(static_cast<double>(mempod_mgr.remapStorageBits()) /
                    8 / 4) +
             " / pod"});
    table.addRow(
        {"activity tracking",
         bytesHuman(static_cast<double>(thm.trackingStorageBits()) / 8),
         bytesHuman(static_cast<double>(hma.trackingStorageBits()) / 8),
         "n/a (event trigger)",
         bytesHuman(
             static_cast<double>(mempod_mgr.trackingStorageBits()) /
             8)});
    table.addRow({"migration trigger", "threshold", "interval (100 ms)",
                  "event (every slow access)", "interval (50 us)"});
    table.addRow({"tracking organization", "fully centralized",
                  "fully distributed", "fully distributed",
                  "semi-distributed (4 pods)"});
    table.addRow({"migration driver", "CPU", "CPU (OS)", "MCs", "Pod"});
    table.print();

    const double hma_bytes =
        static_cast<double>(hma.trackingStorageBits()) / 8;
    const double thm_bytes =
        static_cast<double>(thm.trackingStorageBits()) / 8;
    const double mempod_bytes =
        static_cast<double>(mempod_mgr.trackingStorageBits()) / 8;
    std::printf("\ntracking-cost ratios: HMA/MemPod = %.0fx, "
                "THM/MemPod = %.0fx (paper: ~12800x and ~712x)\n",
                hma_bytes / mempod_bytes, thm_bytes / mempod_bytes);

    std::printf("\n--- Table 2 system configuration ---\n");
    for (const DramSpec &s :
         {DramSpec::hbm1GHz(), DramSpec::ddr4_1600()}) {
        std::printf(
            "%-10s  %u-bit bus, %u banks, %llu-byte rows, "
            "tCL-tRCD-tRP-tRAS = %u-%u-%u-%u @ %.2f GHz\n",
            s.name.c_str(), s.org.busBits, s.org.banksPerRank,
            static_cast<unsigned long long>(s.org.rowBufferBytes),
            static_cast<unsigned>(s.timing.cycles(s.timing.tCL)),
            static_cast<unsigned>(s.timing.cycles(s.timing.tRCD)),
            static_cast<unsigned>(s.timing.cycles(s.timing.tRP)),
            static_cast<unsigned>(s.timing.cycles(s.timing.tRAS)),
            1000.0 / static_cast<double>(s.timing.clockPeriodPs));
    }
    const SystemGeometry g = SystemGeometry::paper();
    std::printf("capacity: %.0f GiB HBM (%u ch) + %.0f GiB DDR4 "
                "(%u ch), %u pods, 2 KB pages\n",
                static_cast<double>(g.fastBytes) / (1_GiB),
                g.fastChannels,
                static_cast<double>(g.slowBytes) / (1_GiB),
                g.slowChannels, g.numPods);
    finishBench("table1_costs", opt, {});
    return 0;
}
