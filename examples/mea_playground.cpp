/**
 * @file
 * Standalone demonstration of the MEA tracker (the paper's Section 3)
 * without any timing simulation: feeds a synthetic page stream with a
 * known hot set plus a phase change through MEA and Full Counters,
 * and shows what each scheme would predict for the next interval.
 *
 * Usage: mea_playground [mea_entries] [counter_bits]
 */
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "tracking/full_counters.h"
#include "tracking/mea.h"

int
main(int argc, char **argv)
{
    using namespace mempod;

    const std::uint32_t entries =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;
    const std::uint32_t bits =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

    std::printf("MEA with %u entries, %u-bit counters "
                "(storage: %llu bits vs %llu bits for full counters "
                "over 10k pages)\n\n",
                entries, bits,
                static_cast<unsigned long long>(
                    MeaTracker(entries, bits).storageBits()),
                static_cast<unsigned long long>(
                    FullCounters(10000, 16).storageBits()));

    MeaTracker mea(entries, bits);
    FullCounters fc(10000, 16);
    Rng rng(99);

    // Interval: pages 0-4 are hot early, pages 5-9 become hot late
    // (a phase change inside the interval), plus uniform noise.
    std::printf("stream: 3000 accesses — early hot {0..4}, late hot "
                "{5..9}, 30%% noise\n");
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t page;
        if (rng.nextBool(0.3)) {
            page = 10 + rng.nextBelow(9990); // noise
        } else if (i < 1500) {
            page = rng.nextBelow(5); // early hot set
        } else {
            page = 5 + rng.nextBelow(5); // late hot set
        }
        mea.touch(page);
        fc.touch(page);
    }

    std::printf("\nMEA tracked set (count desc) — biased toward the "
                "*recent* hot set:\n  ");
    for (const auto &e : mea.snapshot())
        std::printf("page %llu (x%llu)  ",
                    static_cast<unsigned long long>(e.id),
                    static_cast<unsigned long long>(e.count));

    std::printf("\n\nFull-counter top %u — dominated by total volume, "
                "including pages the program has finished with:\n  ",
                entries);
    for (const auto &e : fc.topN(entries))
        std::printf("page %llu (x%llu)  ",
                    static_cast<unsigned long long>(e.id),
                    static_cast<unsigned long long>(e.count));

    std::printf("\n\nIf the next interval keeps the late hot set "
                "{5..9}, MEA's predictions hit; FC still ranks the "
                "early set it counted most. This is why MemPod uses "
                "MEA for migration candidate selection.\n");
    return 0;
}
