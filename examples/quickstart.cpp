/**
 * @file
 * Quickstart: build the paper's Table 2 system, generate a small
 * 8-core workload, and compare MemPod against a two-level memory with
 * no migration. Demonstrates the three core API layers: workload
 * generation, simulation configuration, and result reporting.
 *
 * Usage: quickstart [workload] [requests]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/report.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

int
main(int argc, char **argv)
{
    using namespace mempod;

    const std::string workload_name = argc > 1 ? argv[1] : "xalanc";
    const std::uint64_t requests =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400'000;

    // 1. Generate a deterministic multi-programmed trace.
    GeneratorConfig gen;
    gen.totalRequests = requests;
    gen.seed = 42;
    const CatalogEntry &entry =
        WorkloadCatalog::global().find(workload_name);
    const Trace trace =
        WorkloadCatalog::global().build(workload_name, gen);
    const TraceSummary summary = summarize(trace);
    std::printf("workload %s: %llu requests, %.1f req/us, "
                "%llu distinct pages, %.2f ms of execution\n",
                entry.name.c_str(),
                static_cast<unsigned long long>(summary.records),
                summary.requestsPerUs,
                static_cast<unsigned long long>(summary.touchedPages),
                static_cast<double>(summary.duration) / 1e9);

    // 2. Run the same trace through a no-migration TLM and MemPod.
    TablePrinter table({"mechanism", "AMMAT (ns)", "fast service %",
                        "migrations", "data moved (MiB)",
                        "row-buffer hit %"});
    double base_ammat = 0.0;
    for (const Mechanism m :
         {Mechanism::kNoMigration, Mechanism::kMemPod}) {
        SimConfig cfg = SimConfig::paper(m);
        const RunResult r = runSimulation(cfg, trace, entry.name);
        if (m == Mechanism::kNoMigration)
            base_ammat = r.ammatNs;
        table.addRow({r.mechanism, TablePrinter::num(r.ammatNs, 1),
                      TablePrinter::num(100 * r.fastServiceFraction, 1),
                      std::to_string(r.migration.migrations),
                      TablePrinter::num(r.dataMovedMiB(), 1),
                      TablePrinter::num(100 * r.rowHitRate, 1)});
        if (m == Mechanism::kMemPod && base_ammat > 0) {
            std::printf(
                "\nMemPod improves AMMAT by %.1f%% over the "
                "no-migration two-level memory.\n\n",
                100.0 * (1.0 - r.ammatNs / base_ammat));
        }
    }

    // 3. Report.
    table.print();
    return 0;
}
