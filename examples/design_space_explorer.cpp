/**
 * @file
 * Interactive design-space exploration of MemPod's knobs on a chosen
 * workload: epoch length, MEA entry count and counter width — the
 * Section 6.3.1 experiments as a single-workload CLI tool.
 *
 * Usage: design_space_explorer [workload] [requests]
 *          [--epochs us,us,...] [--counters k,k,...] [--bits b,b,...]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/simulation.h"
#include "trace/workloads.h"

namespace {

std::vector<std::uint64_t>
parseList(const char *s)
{
    std::vector<std::uint64_t> out;
    const std::string str(s);
    std::size_t pos = 0;
    while (pos < str.size()) {
        out.push_back(std::strtoull(str.c_str() + pos, nullptr, 10));
        const std::size_t comma = str.find(',', pos);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mempod;

    std::string workload = "xalanc";
    std::uint64_t requests = 300'000;
    std::vector<std::uint64_t> epochs_us{25, 50, 100, 200};
    std::vector<std::uint64_t> counters{16, 64, 256};
    std::vector<std::uint64_t> bits{2};

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--epochs") && i + 1 < argc)
            epochs_us = parseList(argv[++i]);
        else if (!std::strcmp(argv[i], "--counters") && i + 1 < argc)
            counters = parseList(argv[++i]);
        else if (!std::strcmp(argv[i], "--bits") && i + 1 < argc)
            bits = parseList(argv[++i]);
        else if (positional == 0)
            workload = argv[i], ++positional;
        else
            requests = std::strtoull(argv[i], nullptr, 10);
    }

    GeneratorConfig gen;
    gen.totalRequests = requests;
    const Trace trace =
        buildWorkloadTrace(findWorkload(workload), gen);

    const double base =
        runSimulation(SimConfig::paper(Mechanism::kNoMigration), trace)
            .ammatNs;
    std::printf("workload %s, %llu requests; no-migration AMMAT "
                "%.1f ns\n\n",
                workload.c_str(),
                static_cast<unsigned long long>(requests), base);

    TablePrinter table({"epoch (us)", "counters", "bits", "AMMAT (ns)",
                        "norm.", "migr/pod/interval", "fast %"});

    double best = 1e30;
    std::string best_desc;
    for (const auto e : epochs_us) {
        for (const auto k : counters) {
            for (const auto b : bits) {
                SimConfig cfg = SimConfig::paper(Mechanism::kMemPod);
                cfg.mempod.interval = e * 1_us;
                cfg.mempod.pod.meaEntries =
                    static_cast<std::uint32_t>(k);
                cfg.mempod.pod.meaCounterBits =
                    static_cast<std::uint32_t>(b);
                const RunResult r = runSimulation(cfg, trace, workload);
                const double mpi =
                    r.migration.intervals
                        ? static_cast<double>(r.migration.migrations) /
                              4.0 / r.migration.intervals
                        : 0.0;
                table.addRow({std::to_string(e), std::to_string(k),
                              std::to_string(b),
                              TablePrinter::num(r.ammatNs, 1),
                              TablePrinter::num(r.ammatNs / base, 3),
                              TablePrinter::num(mpi, 1),
                              TablePrinter::num(
                                  100 * r.fastServiceFraction, 1)});
                if (r.ammatNs < best) {
                    best = r.ammatNs;
                    best_desc = std::to_string(e) + " us / " +
                                std::to_string(k) + " counters / " +
                                std::to_string(b) + " bits";
                }
            }
        }
    }

    table.print();
    std::printf("\nbest: %s (AMMAT %.1f ns, %.1f%% better than "
                "no-migration)\n",
                best_desc.c_str(), best, 100 * (1 - best / base));
    return 0;
}
