/**
 * @file
 * Interactive design-space exploration of MemPod's knobs on a chosen
 * workload: epoch length, MEA entry count and counter width — the
 * Section 6.3.1 experiments as a single-workload CLI tool.
 *
 * Usage: design_space_explorer [workload] [requests]
 *          [--epochs us,us,...] [--counters k,k,...] [--bits b,b,...]
 *          [--jobs N]
 *
 * The grid runs on the BatchRunner worker pool; results are identical
 * at any --jobs value.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/runner.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

namespace {

std::vector<std::uint64_t>
parseList(const char *s)
{
    std::vector<std::uint64_t> out;
    const std::string str(s);
    std::size_t pos = 0;
    while (pos < str.size()) {
        out.push_back(std::strtoull(str.c_str() + pos, nullptr, 10));
        const std::size_t comma = str.find(',', pos);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mempod;

    std::string workload = "xalanc";
    std::uint64_t requests = 300'000;
    unsigned jobs = 0;
    std::vector<std::uint64_t> epochs_us{25, 50, 100, 200};
    std::vector<std::uint64_t> counters{16, 64, 256};
    std::vector<std::uint64_t> bits{2};

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--epochs") && i + 1 < argc)
            epochs_us = parseList(argv[++i]);
        else if (!std::strcmp(argv[i], "--counters") && i + 1 < argc)
            counters = parseList(argv[++i]);
        else if (!std::strcmp(argv[i], "--bits") && i + 1 < argc)
            bits = parseList(argv[++i]);
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else if (positional == 0)
            workload = argv[i], ++positional;
        else
            requests = std::strtoull(argv[i], nullptr, 10);
    }

    GeneratorConfig gen;
    gen.totalRequests = requests;
    if (!WorkloadCatalog::global().tryFind(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return 2;
    }

    // The baseline plus the whole knob grid as one parallel batch;
    // the runner generates the workload trace once and shares it.
    BatchRunner runner({.jobs = jobs, .progress = true});
    {
        BatchJob baseline;
        baseline.config = SimConfig::paper(Mechanism::kNoMigration);
        baseline.workload = workload;
        baseline.gen = gen;
        baseline.label = "TLM";
        runner.add(std::move(baseline));
    }
    for (const auto e : epochs_us) {
        for (const auto k : counters) {
            for (const auto b : bits) {
                BatchJob job;
                job.config = SimConfig::paper(Mechanism::kMemPod);
                job.config.mempod.interval = e * 1_us;
                job.config.mempod.pod.meaEntries =
                    static_cast<std::uint32_t>(k);
                job.config.mempod.pod.meaCounterBits =
                    static_cast<std::uint32_t>(b);
                job.workload = workload;
                job.gen = gen;
                job.label = std::to_string(e) + "us/" +
                            std::to_string(k) + "c/" +
                            std::to_string(b) + "b";
                runner.add(std::move(job));
            }
        }
    }
    const std::vector<JobResult> results = runner.runAll();
    for (const JobResult &jr : results) {
        if (!jr.ok) {
            std::fprintf(stderr, "job %s failed: %s\n",
                         jr.label.c_str(), jr.error.c_str());
            return 1;
        }
    }

    const double base = results[0].result.ammatNs;
    std::printf("workload %s, %llu requests; no-migration AMMAT "
                "%.1f ns\n\n",
                workload.c_str(),
                static_cast<unsigned long long>(requests), base);

    TablePrinter table({"epoch (us)", "counters", "bits", "AMMAT (ns)",
                        "norm.", "migr/pod/interval", "fast %"});

    double best = 1e30;
    std::string best_desc;
    std::size_t idx = 1;
    for (const auto e : epochs_us) {
        for (const auto k : counters) {
            for (const auto b : bits) {
                const RunResult &r = results[idx++].result;
                const double mpi =
                    r.migration.intervals
                        ? static_cast<double>(r.migration.migrations) /
                              4.0 / r.migration.intervals
                        : 0.0;
                table.addRow({std::to_string(e), std::to_string(k),
                              std::to_string(b),
                              TablePrinter::num(r.ammatNs, 1),
                              TablePrinter::num(r.ammatNs / base, 3),
                              TablePrinter::num(mpi, 1),
                              TablePrinter::num(
                                  100 * r.fastServiceFraction, 1)});
                if (r.ammatNs < best) {
                    best = r.ammatNs;
                    best_desc = std::to_string(e) + " us / " +
                                std::to_string(k) + " counters / " +
                                std::to_string(b) + " bits";
                }
            }
        }
    }

    table.print();
    std::printf("\nbest: %s (AMMAT %.1f ns, %.1f%% better than "
                "no-migration)\n",
                best_desc.c_str(), best, 100 * (1 - best / base));
    return 0;
}
