/**
 * @file
 * Tour of one Table 3 mixed workload across every migration
 * mechanism: runs the same multi-programmed trace under no-migration,
 * MemPod, HMA, THM and CAMEO, and reports AMMAT, fast-service
 * fraction, migration counts/traffic and blocked-request counts —
 * the comparison at the heart of the paper's Figure 8.
 *
 * Usage: mixed_workload_tour [mixN] [requests]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/report.h"
#include "sim/simulation.h"
#include "trace/catalog.h"

int
main(int argc, char **argv)
{
    using namespace mempod;

    const std::string name = argc > 1 ? argv[1] : "mix5";
    const std::uint64_t requests =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400'000;

    const CatalogEntry &entry = WorkloadCatalog::global().find(name);
    std::printf("workload %s:", entry.name.c_str());
    for (const auto &b : entry.synthetic.benchmarks)
        std::printf(" %s", b.c_str());
    std::printf("\n\n");

    GeneratorConfig gen;
    gen.totalRequests = requests;
    const Trace trace = WorkloadCatalog::global().build(name, gen);

    TablePrinter table({"mechanism", "AMMAT (ns)", "norm.", "fast %",
                        "migrations", "moved (MiB)", "blocked reqs",
                        "row hit %"});

    double base = 0.0;
    for (Mechanism m : {Mechanism::kNoMigration, Mechanism::kMemPod,
                        Mechanism::kHma, Mechanism::kThm,
                        Mechanism::kCameo}) {
        SimConfig cfg = SimConfig::paper(m);
        if (m == Mechanism::kHma)
            cfg.scaleHmaEpoch(40.0); // see EXPERIMENTS.md scale note
        const RunResult r = runSimulation(cfg, trace, entry.name);
        if (m == Mechanism::kNoMigration)
            base = r.ammatNs;
        table.addRow({r.mechanism, TablePrinter::num(r.ammatNs, 1),
                      TablePrinter::num(r.ammatNs / base, 3),
                      TablePrinter::num(100 * r.fastServiceFraction, 1),
                      std::to_string(r.migration.migrations),
                      TablePrinter::num(r.dataMovedMiB(), 1),
                      std::to_string(r.migration.blockedRequests),
                      TablePrinter::num(100 * r.rowHitRate, 1)});
    }

    table.print();
    std::printf("\nNotes: CAMEO swaps 64 B lines on every slow access "
                "(many small moves); MemPod swaps 2 KB pages per 50 us "
                "epoch, split across 4 independent Pods.\n");
    return 0;
}
