/**
 * @file
 * Shared flat-JSON reader for the CLI tools (perf_tool,
 * explain_tool): a minimal recursive-descent parser that keeps only
 * numeric leaves, keyed by dotted path ("summary.ammat_ns",
 * "wall_seconds.median", "benchmarks[0].wall_ms"). It handles exactly
 * the JSON this repo writes (objects, arrays, numbers, strings,
 * bools, null) — no surrogate-pair escapes, no arbitrary-precision
 * numbers. Header-only so the tools stay single-file executables.
 */
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace mempod::tools {

/** Numeric leaves of one JSON document, keyed by dotted path. */
using FlatDoc = std::map<std::string, double>;

/**
 * Recursive-descent reader over `s` starting at `at`. Object members
 * extend the path with ".key", array elements with "[i]"; numeric
 * leaves land in `out`, everything else is parsed and dropped.
 */
class FlatParser
{
  public:
    FlatParser(const std::string &s, FlatDoc &out) : s_(s), out_(out) {}

    bool
    parse()
    {
        skipWs();
        if (!value(""))
            return false;
        skipWs();
        return at_ == s_.size();
    }

    std::size_t errorAt() const { return at_; }

  private:
    void
    skipWs()
    {
        while (at_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[at_])))
            ++at_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(at_, n, word) != 0)
            return false;
        at_ += n;
        return true;
    }

    /** Parse a string token; returns false on malformed input. */
    bool
    stringToken(std::string &out)
    {
        if (at_ >= s_.size() || s_[at_] != '"')
            return false;
        ++at_;
        out.clear();
        while (at_ < s_.size() && s_[at_] != '"') {
            char c = s_[at_++];
            if (c == '\\' && at_ < s_.size()) {
                const char esc = s_[at_++];
                switch (esc) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'u':
                    // Skip the 4 hex digits; keep a placeholder. The
                    // sidecars never escape anything but quotes and
                    // backslashes, so fidelity here doesn't matter.
                    at_ = std::min(at_ + 4, s_.size());
                    c = '?';
                    break;
                default: c = esc; break;
                }
            }
            out.push_back(c);
        }
        if (at_ >= s_.size())
            return false;
        ++at_; // closing quote
        return true;
    }

    bool
    value(const std::string &path)
    {
        skipWs();
        if (at_ >= s_.size())
            return false;
        const char c = s_[at_];
        if (c == '{')
            return object(path);
        if (c == '[')
            return array(path);
        if (c == '"') {
            std::string ignored;
            return stringToken(ignored);
        }
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        // Number.
        char *end = nullptr;
        const double v = std::strtod(s_.c_str() + at_, &end);
        if (end == s_.c_str() + at_)
            return false;
        at_ = static_cast<std::size_t>(end - s_.c_str());
        if (!path.empty())
            out_[path] = v;
        return true;
    }

    bool
    object(const std::string &path)
    {
        ++at_; // '{'
        skipWs();
        if (at_ < s_.size() && s_[at_] == '}') {
            ++at_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!stringToken(key))
                return false;
            skipWs();
            if (at_ >= s_.size() || s_[at_] != ':')
                return false;
            ++at_;
            if (!value(path.empty() ? key : path + "." + key))
                return false;
            skipWs();
            if (at_ < s_.size() && s_[at_] == ',') {
                ++at_;
                continue;
            }
            if (at_ < s_.size() && s_[at_] == '}') {
                ++at_;
                return true;
            }
            return false;
        }
    }

    bool
    array(const std::string &path)
    {
        ++at_; // '['
        skipWs();
        if (at_ < s_.size() && s_[at_] == ']') {
            ++at_;
            return true;
        }
        std::size_t i = 0;
        while (true) {
            if (!value(path + "[" + std::to_string(i++) + "]"))
                return false;
            skipWs();
            if (at_ < s_.size() && s_[at_] == ',') {
                ++at_;
                continue;
            }
            if (at_ < s_.size() && s_[at_] == ']') {
                ++at_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    FlatDoc &out_;
    std::size_t at_ = 0;
};

/**
 * Load and flatten one JSON file; exits(2) with context (prefixed by
 * `tool`, the calling program's name) on open or parse failure.
 */
inline FlatDoc
loadFlat(const char *tool, const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open '%s'\n", tool, path);
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    FlatDoc doc;
    FlatParser p(text, doc);
    if (!p.parse()) {
        std::fprintf(stderr,
                     "%s: '%s' is not valid JSON (error near byte "
                     "%zu)\n",
                     tool, path, p.errorAt());
        std::exit(2);
    }
    return doc;
}

} // namespace mempod::tools
