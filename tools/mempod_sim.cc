/**
 * @file
 * General-purpose simulation driver: run any workload (or a saved
 * trace file) through any mechanism and configuration from the
 * command line, and print the full statistics bundle — the tool a
 * downstream user reaches for first.
 *
 * Usage:
 *   mempod_sim --workload mix5 --mechanism mempod --requests 500000
 *              [--epoch-us 50] [--counters 64] [--bits 2]
 *              [--pods 4] [--cache-kb 0] [--future] [--seed 42]
 *              [--trace file.bin] [--per-core]
 *              [--manifest traces.json] [--record capture.trc]
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "sim/energy.h"
#include "sim/simulation.h"
#include "trace/catalog.h"
#include "trace/native.h"
#include "trace/source.h"

namespace {

using namespace mempod;

Mechanism
parseMechanism(const std::string &s)
{
    Mechanism m;
    if (!mechanismFromName(s, m)) {
        MEMPOD_FATAL("unknown mechanism '%s' (use "
                     "none|mempod|hma|thm|cameo)",
                     s.c_str());
    }
    return m;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        MEMPOD_FATAL("cannot open config file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

[[noreturn]] void
usage()
{
    std::printf(
        "mempod_sim --workload NAME | --trace FILE\n"
        "  [--mechanism none|mempod|hma|thm|cameo]  (default mempod)\n"
        "  [--requests N]       trace length          (default 500000)\n"
        "  [--epoch-us U]       MemPod interval       (default 50)\n"
        "  [--counters K]       MEA entries per pod   (default 64)\n"
        "  [--bits B]           MEA counter width     (default 2)\n"
        "  [--pods P]           number of pods        (default 4)\n"
        "  [--cache-kb C]       bookkeeping cache     (default off)\n"
        "  [--future]           HBM-4GHz + DDR4-2400 system\n"
        "  [--fast-only|--slow-only] single-technology system\n"
        "  [--seed S] [--per-core] [--baseline]\n"
        "  [--manifest FILE]    load a traces.json corpus manifest;\n"
        "                       its workloads become --workload names\n"
        "                       (repeatable)\n"
        "  [--record FILE]      capture the trace actually simulated\n"
        "                       to FILE in the native format for\n"
        "                       byte-identical replay via --trace\n"
        "  [--config FILE]      load a SimConfig JSON file; the knob\n"
        "                       flags above are ignored (use --set)\n"
        "  [--set key=value]    dotted-key override, applied last\n"
        "                       (repeatable; schema in EXPERIMENTS.md)\n"
        "  [--dump-config]      print the resolved config JSON and exit\n");
    std::exit(0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mempod;

    std::string workload = "mix5";
    std::string trace_file;
    std::string record_file;
    std::string mech_name = "mempod";
    std::uint64_t requests = 500'000;
    std::uint64_t seed = 42;
    std::uint64_t epoch_us = 50;
    std::uint32_t counters = 64;
    std::uint32_t bits = 2;
    std::uint32_t pods = 4;
    std::uint64_t cache_kb = 0;
    bool future = false, fast_only = false, slow_only = false;
    bool per_core = false, baseline = false;
    std::string config_file;
    std::vector<std::pair<std::string, std::string>> overrides;
    bool dump_config = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                MEMPOD_FATAL("%s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--workload")
            workload = next();
        else if (a == "--trace")
            trace_file = next();
        else if (a == "--manifest")
            WorkloadCatalog::global().loadManifest(next());
        else if (a == "--record")
            record_file = next();
        else if (a == "--mechanism")
            mech_name = next();
        else if (a == "--requests")
            requests = std::strtoull(next(), nullptr, 10);
        else if (a == "--seed")
            seed = std::strtoull(next(), nullptr, 10);
        else if (a == "--epoch-us")
            epoch_us = std::strtoull(next(), nullptr, 10);
        else if (a == "--counters")
            counters = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--bits")
            bits = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--pods")
            pods = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--cache-kb")
            cache_kb = std::strtoull(next(), nullptr, 10);
        else if (a == "--future")
            future = true;
        else if (a == "--fast-only")
            fast_only = true;
        else if (a == "--slow-only")
            slow_only = true;
        else if (a == "--config")
            config_file = next();
        else if (a == "--set") {
            const std::string kv = next();
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0)
                MEMPOD_FATAL("--set expects key=value, got '%s'",
                             kv.c_str());
            overrides.emplace_back(kv.substr(0, eq),
                                   kv.substr(eq + 1));
        } else if (a == "--dump-config")
            dump_config = true;
        else if (a == "--per-core")
            per_core = true;
        else if (a == "--baseline")
            baseline = true;
        else
            usage();
    }

    SimConfig cfg;
    if (!config_file.empty()) {
        // The file is the whole truth; only --set amends it.
        cfg = SimConfig::fromJson(readFile(config_file));
    } else {
        const Mechanism mech = parseMechanism(mech_name);
        cfg = future ? SimConfig::future(mech)
                     : SimConfig::paper(mech);
        if (fast_only)
            cfg = SimConfig::fastOnly(future);
        if (slow_only)
            cfg = SimConfig::slowOnly(future);
        cfg.geom.numPods = fast_only || slow_only ? 1 : pods;
        cfg.mempod.interval = epoch_us * 1_us;
        cfg.mempod.pod.meaEntries = counters;
        cfg.mempod.pod.meaCounterBits = bits;
        if (mech == Mechanism::kHma)
            cfg.scaleHmaEpoch(40.0);
        if (cache_kb > 0) {
            cfg.mempod.pod.metaCacheEnabled = true;
            cfg.mempod.pod.metaCacheBytes = cache_kb * 1024 / pods;
            cfg.hma.metaCacheEnabled = true;
            cfg.hma.metaCacheBytes = cache_kb * 1024;
            cfg.thm.metaCacheEnabled = true;
            cfg.thm.metaCacheBytes = cache_kb * 1024;
        }
    }
    for (const auto &[key, value] : overrides)
        cfg.set(key, value);
    if (dump_config) {
        std::printf("%s", cfg.toJson().c_str());
        return 0;
    }

    // One streaming cursor serves the summary, the optional baseline
    // and the main run — every consumer resets it before draining, so
    // external traces never have to be materialized.
    std::unique_ptr<TraceSource> source;
    if (!trace_file.empty()) {
        source = std::make_unique<NativeTraceSource>(trace_file);
        workload = trace_file;
    } else {
        GeneratorConfig gc;
        gc.totalRequests = requests;
        gc.seed = seed;
        source = WorkloadCatalog::global().open(workload, gc);
    }

    if (!record_file.empty()) {
        source->reset();
        NativeTraceWriter writer(record_file);
        TraceRecord rec;
        while (source->next(rec))
            writer.append(rec);
        writer.close();
        std::printf("recorded %llu records to %s\n",
                    static_cast<unsigned long long>(
                        writer.recordsWritten()),
                    record_file.c_str());
    }

    std::printf("config: %s\n", cfg.describe().c_str());
    const TraceSummary ts = summarize(*source);
    std::printf("trace: %llu requests, %.1f req/us, %llu pages, "
                "%.2f ms\n\n",
                static_cast<unsigned long long>(ts.records),
                ts.requestsPerUs,
                static_cast<unsigned long long>(ts.touchedPages),
                static_cast<double>(ts.duration) / 1e9);

    double base_ammat = 0;
    if (baseline) {
        SimConfig bcfg = cfg;
        bcfg.mechanism = Mechanism::kNoMigration;
        base_ammat = runSimulation(bcfg, *source, workload).ammatNs;
        std::printf("no-migration AMMAT: %.2f ns\n", base_ammat);
    }

    const RunResult r = runSimulation(cfg, *source, workload);
    if (r.sampled) {
        std::printf("sampled AMMAT:      %.2f ns +/- %.2f (95%% CI, "
                    "%llu windows)\n",
                    r.sampledAmmatNs, r.sampledCiNs,
                    static_cast<unsigned long long>(r.sampleWindows));
    }
    std::printf("AMMAT:              %.2f ns", r.ammatNs);
    if (base_ammat > 0)
        std::printf("  (%.3f normalized)", r.ammatNs / base_ammat);
    std::printf("\nfast service:       %.1f %%\n",
                100 * r.fastServiceFraction);
    std::printf("row-buffer hits:    %.1f %% (fast tier %.1f %%)\n",
                100 * r.rowHitRate, 100 * r.rowHitRateFast);
    std::printf("migrations:         %llu (%.1f MiB moved)\n",
                static_cast<unsigned long long>(r.migration.migrations),
                r.dataMovedMiB());
    std::printf("blocked demands:    %llu\n",
                static_cast<unsigned long long>(
                    r.migration.blockedRequests));
    if (r.migration.metaCacheHits + r.migration.metaCacheMisses > 0) {
        std::printf(
            "metadata cache:     %.1f %% miss\n",
            100.0 * r.migration.metaCacheMisses /
                (r.migration.metaCacheHits +
                 r.migration.metaCacheMisses));
    }
    const EnergyEstimate e =
        estimateEnergy(r.memStats, r.podLocalMigrations);
    std::printf("movement energy:    %.1f uJ (%.1f demand, %.1f "
                "migration, %.1f bookkeeping)\n",
                e.totalUj(), e.demandUj, e.migrationUj,
                e.bookkeepingUj);
    std::printf("simulated time:     %.3f ms (%llu events)\n",
                static_cast<double>(r.simulatedPs) / 1e9,
                static_cast<unsigned long long>(r.eventsExecuted));

    if (per_core) {
        std::printf("\nper-core AMMAT (ns):");
        for (std::size_t c = 0; c < r.perCoreAmmatNs.size(); ++c)
            std::printf(" c%zu=%.1f", c, r.perCoreAmmatNs[c]);
        std::printf("\n");
    }
    return 0;
}
