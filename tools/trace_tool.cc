/**
 * @file
 * Trace utility: generate workload traces to disk, inspect saved
 * traces, and print per-core composition — so experiments can be run
 * repeatedly against identical frozen inputs.
 *
 * Usage:
 *   trace_tool gen     <workload> <file.bin> [requests] [seed]
 *   trace_tool record  <workload> <file.trc> [requests] [seed]
 *                      [--manifest traces.json]...
 *   trace_tool convert <in.trc> <out-stem> champsim|sift
 *                      [--timing ip|period] [--period-ps N]
 *                      [--addr-bias N]
 *   trace_tool info    <file.bin>
 *   trace_tool summary <file.trace.json> [topk] [--json]
 *
 * `record` streams any catalog workload (synthetic, or external after
 * --manifest) into the versioned native trace format; `convert` splits
 * a native trace into per-core ChampSim or SIFT files and prints the
 * manifest entry that replays them. `summary --json` replaces the
 * human tables with one machine-readable JSON object (event counts,
 * span totals, top-k longest spans) so scripts and CI can digest a
 * trace without scraping table output.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/footprint.h"
#include "trace/catalog.h"
#include "trace/champsim.h"
#include "trace/native.h"
#include "trace/sift.h"

namespace {

using namespace mempod;

int
cmdGen(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: trace_tool gen <workload> <file.bin> "
                     "[requests] [seed]\n");
        return 2;
    }
    GeneratorConfig gc;
    gc.totalRequests =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1'000'000;
    gc.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 42;
    const Trace trace = WorkloadCatalog::global().build(argv[2], gc);
    saveTrace(trace, argv[3]);
    const TraceSummary s = summarize(trace);
    std::printf("wrote %llu records (%.1f req/us, %.2f ms) to %s\n",
                static_cast<unsigned long long>(s.records),
                s.requestsPerUs,
                static_cast<double>(s.duration) / 1e9, argv[3]);
    return 0;
}

int
cmdRecord(int argc, char **argv)
{
    std::vector<const char *> pos;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--manifest") && i + 1 < argc)
            WorkloadCatalog::global().loadManifest(argv[++i]);
        else
            pos.push_back(argv[i]);
    }
    if (pos.size() < 2) {
        std::fprintf(stderr,
                     "usage: trace_tool record <workload> <file.trc> "
                     "[requests] [seed] [--manifest traces.json]...\n");
        return 2;
    }
    GeneratorConfig gc;
    gc.totalRequests =
        pos.size() > 2 ? std::strtoull(pos[2], nullptr, 10) : 1'000'000;
    gc.seed = pos.size() > 3 ? std::strtoull(pos[3], nullptr, 10) : 42;

    const auto source = WorkloadCatalog::global().open(pos[0], gc);
    source->reset();
    NativeTraceWriter writer(pos[1]);
    TraceRecord rec;
    while (source->next(rec))
        writer.append(rec);
    writer.close();
    std::printf("recorded %llu records to %s (peak mapped %llu KiB)\n",
                static_cast<unsigned long long>(writer.recordsWritten()),
                pos[1],
                static_cast<unsigned long long>(
                    source->maxResidentBytes() / 1024));
    return 0;
}

/** The traces.json entry that replays a convert's output, verbatim. */
void
printManifestEntry(const char *fmt_line,
                   const std::vector<std::pair<std::string, unsigned>>
                       &files)
{
    std::printf("manifest entry (paste into traces.json "
                "\"traces\": [...]):\n");
    std::printf("  {%s,\n   \"files\": [", fmt_line);
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::printf("%s{\"path\": \"%s\", \"core\": %u}",
                    i ? ",\n              " : "", files[i].first.c_str(),
                    files[i].second);
    }
    std::printf("]}\n");
}

int
cmdConvert(int argc, char **argv)
{
    ChampSimTiming timing = ChampSimTiming::kIp;
    TimePs period_ps = 1000;
    std::uint64_t addr_bias = champsim::kDefaultAddrBias;
    std::vector<const char *> pos;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--timing") && i + 1 < argc) {
            const std::string t = argv[++i];
            if (t == "ip")
                timing = ChampSimTiming::kIp;
            else if (t == "period")
                timing = ChampSimTiming::kPeriod;
            else {
                std::fprintf(stderr,
                             "--timing must be ip or period, got "
                             "'%s'\n",
                             t.c_str());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--period-ps") &&
                   i + 1 < argc) {
            period_ps = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--addr-bias") &&
                   i + 1 < argc) {
            addr_bias = std::strtoull(argv[++i], nullptr, 10);
        } else {
            pos.push_back(argv[i]);
        }
    }
    if (pos.size() < 3) {
        std::fprintf(stderr,
                     "usage: trace_tool convert <in.trc> <out-stem> "
                     "champsim|sift [--timing ip|period] "
                     "[--period-ps N] [--addr-bias N]\n");
        return 2;
    }

    NativeTraceSource source(pos[0]);
    const std::string fmt = pos[2];
    std::vector<std::pair<std::string, unsigned>> files;
    if (fmt == "champsim") {
        const ChampSimConvertResult res =
            convertToChampSim(source, pos[1], timing, addr_bias);
        for (const auto &f : res.files)
            files.emplace_back(f.path, f.core);
        std::printf("converted %llu records into %zu ChampSim "
                    "file(s)\n",
                    static_cast<unsigned long long>(res.records),
                    files.size());
        char fmt_line[160];
        std::snprintf(fmt_line, sizeof fmt_line,
                      "\"name\": \"NAME\", \"format\": \"champsim\", "
                      "\"timing\": \"%s\", \"addr_bias\": %llu",
                      timing == ChampSimTiming::kIp ? "ip" : "period",
                      static_cast<unsigned long long>(addr_bias));
        printManifestEntry(fmt_line, files);
    } else if (fmt == "sift") {
        const SiftConvertResult res =
            convertToSift(source, pos[1], period_ps);
        for (const auto &f : res.files)
            files.emplace_back(f.path, f.core);
        std::printf("converted %llu records into %zu SIFT file(s)\n",
                    static_cast<unsigned long long>(res.records),
                    files.size());
        char fmt_line[160];
        std::snprintf(fmt_line, sizeof fmt_line,
                      "\"name\": \"NAME\", \"format\": \"sift\", "
                      "\"period_ps\": %llu",
                      static_cast<unsigned long long>(period_ps));
        printManifestEntry(fmt_line, files);
    } else {
        std::fprintf(stderr,
                     "unknown convert format '%s' (use champsim or "
                     "sift)\n",
                     fmt.c_str());
        return 2;
    }
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: trace_tool info <file.bin>\n");
        return 2;
    }
    const Trace trace = loadTrace(argv[2]);
    const TraceSummary s = summarize(trace);
    std::printf("records:      %llu\n",
                static_cast<unsigned long long>(s.records));
    std::printf("reads/writes: %llu / %llu (%.1f%% writes)\n",
                static_cast<unsigned long long>(s.reads),
                static_cast<unsigned long long>(s.writes),
                s.records ? 100.0 * s.writes / s.records : 0.0);
    std::printf("duration:     %.3f ms (%.1f req/us)\n",
                static_cast<double>(s.duration) / 1e9, s.requestsPerUs);
    std::printf("pages:        %llu distinct (core, page) pairs\n",
                static_cast<unsigned long long>(s.touchedPages));

    std::unordered_map<int, std::uint64_t> per_core;
    for (const auto &r : trace)
        ++per_core[r.core];
    const FootprintStats f = analyzeFootprint(trace);
    std::printf("concentration: hottest 1/10/100/1k/10k pages absorb "
                "%.1f/%.1f/%.1f/%.1f/%.1f %% of accesses\n",
                100 * f.concentration[0], 100 * f.concentration[1],
                100 * f.concentration[2], 100 * f.concentration[3],
                100 * f.concentration[4]);
    std::printf("skew index:   %.3f; single-touch pages: %.1f %%; "
                "mean 5500-req working set: %.0f pages\n",
                f.skewIndex, 100 * f.singleTouchFraction,
                f.meanWindowWorkingSet());
    std::printf("per core:    ");
    for (int c = 0; c < 256; ++c) {
        auto it = per_core.find(c);
        if (it != per_core.end())
            std::printf(" c%d=%llu", c,
                        static_cast<unsigned long long>(it->second));
    }
    std::printf("\n");
    return 0;
}

/**
 * Extract the string value of `"key":"..."` from one trace-event line;
 * returns "" when absent. The tracer writes one event per line with
 * unescaped identifier-like values, so plain substring search is an
 * exact parse for its own output.
 */
std::string
jsonField(const std::string &line, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return "";
    const std::size_t start = at + needle.size();
    const std::size_t end = line.find('"', start);
    return end == std::string::npos ? "" : line.substr(start, end - start);
}

/** Extract a numeric field `"key":123[.456]`; -1 when absent. */
double
jsonNumber(const std::string &line, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return -1.0;
    return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

int
cmdSummary(int argc, char **argv)
{
    bool as_json = false;
    std::vector<const char *> pos;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--json"))
            as_json = true;
        else
            pos.push_back(argv[i]);
    }
    if (pos.empty()) {
        std::fprintf(stderr, "usage: trace_tool summary "
                             "<file.trace.json> [topk] [--json]\n");
        return 2;
    }
    const std::size_t topk =
        pos.size() > 1 ? std::strtoull(pos[1], nullptr, 10) : 10;
    std::ifstream in(pos[0]);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", pos[0]);
        return 2;
    }

    struct Span
    {
        std::string id;
        double beginUs = 0, endUs = 0;
        double durUs() const { return endUs - beginUs; }
    };
    // Open async spans keyed by cat/id/name until their 'e' arrives.
    std::unordered_map<std::string, Span> open;
    std::map<std::string, std::uint64_t> counts; // per (ph,name)
    std::vector<Span> demands, migrations, blocked;
    std::uint64_t events = 0, unmatched = 0;
    std::map<std::string, std::uint64_t> instants;

    std::string line;
    while (std::getline(in, line)) {
        const std::string ph = jsonField(line, "ph");
        if (ph.empty() || ph == "M")
            continue;
        ++events;
        const std::string name = jsonField(line, "name");
        ++counts[ph + " " + name];
        if (ph == "i")
            ++instants[name];
        if (ph != "b" && ph != "e")
            continue;
        const std::string key = jsonField(line, "cat") + "/" +
                                jsonField(line, "id") + "/" + name;
        const double ts = jsonNumber(line, "ts");
        if (ph == "b") {
            open[key] = Span{jsonField(line, "id"), ts, ts};
        } else {
            auto it = open.find(key);
            if (it == open.end()) {
                ++unmatched;
                continue;
            }
            Span s = it->second;
            s.endUs = ts;
            open.erase(it);
            if (name == "demand")
                demands.push_back(s);
            else if (name == "migration")
                migrations.push_back(s);
            else if (name == "blocked")
                blocked.push_back(s);
        }
    }

    if (as_json) {
        auto byDur = [](const Span &a, const Span &b) {
            return a.durUs() > b.durUs();
        };
        std::sort(demands.begin(), demands.end(), byDur);
        std::sort(migrations.begin(), migrations.end(), byDur);
        auto totalUs = [](const std::vector<Span> &v) {
            double t = 0;
            for (const Span &s : v)
                t += s.durUs();
            return t;
        };
        auto spanArray = [topk](const std::vector<Span> &v) {
            std::string out = "[";
            for (std::size_t i = 0; i < std::min(topk, v.size()); ++i) {
                char buf[160];
                std::snprintf(buf, sizeof buf,
                              "%s{\"id\":\"%s\",\"begin_us\":%.3f,"
                              "\"dur_us\":%.3f}",
                              i ? "," : "", v[i].id.c_str(),
                              v[i].beginUs, v[i].durUs());
                out += buf;
            }
            return out + "]";
        };
        std::printf("{\"schema\":\"mempod-trace-summary-v1\",");
        std::printf("\"events\":%llu,\"unmatched_ends\":%llu,"
                    "\"open_spans\":%zu,",
                    static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(unmatched),
                    open.size());
        std::printf("\"counts\":{");
        bool first = true;
        for (const auto &[k, n] : counts) {
            std::printf("%s\"%s\":%llu", first ? "" : ",", k.c_str(),
                        static_cast<unsigned long long>(n));
            first = false;
        }
        std::printf("},\"markers\":{");
        first = true;
        for (const auto &[k, n] : instants) {
            std::printf("%s\"%s\":%llu", first ? "" : ",", k.c_str(),
                        static_cast<unsigned long long>(n));
            first = false;
        }
        std::printf("},");
        std::printf("\"demands\":{\"complete\":%zu,\"total_us\":%.3f,"
                    "\"top\":%s},",
                    demands.size(), totalUs(demands),
                    spanArray(demands).c_str());
        std::printf("\"migrations\":{\"complete\":%zu,"
                    "\"total_us\":%.3f,\"top\":%s},",
                    migrations.size(), totalUs(migrations),
                    spanArray(migrations).c_str());
        std::printf("\"blocked\":{\"complete\":%zu,\"total_us\":%.3f}",
                    blocked.size(), totalUs(blocked));
        std::printf("}\n");
        return 0;
    }

    std::printf("events: %llu  (unmatched async ends: %llu, "
                "still-open spans: %zu)\n",
                static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(unmatched),
                open.size());
    std::printf("\nevent counts by phase+name:\n");
    for (const auto &[k, n] : counts)
        std::printf("  %-24s %llu\n", k.c_str(),
                    static_cast<unsigned long long>(n));

    auto byDur = [](const Span &a, const Span &b) {
        return a.durUs() > b.durUs();
    };
    std::sort(demands.begin(), demands.end(), byDur);
    std::printf("\ntop %zu longest sampled demand requests:\n",
                std::min(topk, demands.size()));
    for (std::size_t i = 0; i < std::min(topk, demands.size()); ++i)
        std::printf("  id=%-10s start=%12.3f us  latency=%9.3f us\n",
                    demands[i].id.c_str(), demands[i].beginUs,
                    demands[i].durUs());

    // Interference windows: for each migration, how many sampled
    // demand spans overlap it in time (they contended for the same
    // banks or were parked behind its page locks).
    std::sort(migrations.begin(), migrations.end(), byDur);
    double migUs = 0;
    for (const Span &m : migrations)
        migUs += m.durUs();
    std::printf("\nmigrations: %zu complete, total span %.3f us\n",
                migrations.size(), migUs);
    for (std::size_t i = 0; i < std::min(topk, migrations.size());
         ++i) {
        const Span &m = migrations[i];
        std::uint64_t overlap = 0;
        for (const Span &d : demands)
            if (d.beginUs < m.endUs && m.beginUs < d.endUs)
                ++overlap;
        std::printf("  flow=%-12s start=%12.3f us  dur=%9.3f us  "
                    "overlapping sampled demands=%llu\n",
                    m.id.c_str(), m.beginUs, m.durUs(),
                    static_cast<unsigned long long>(overlap));
    }
    double blockedUs = 0;
    for (const Span &b : blocked)
        blockedUs += b.durUs();
    std::printf("\nblocked windows: %zu sampled demands parked behind "
                "migrations, total %.3f us\n",
                blocked.size(), blockedUs);
    if (!instants.empty()) {
        std::printf("\nmarkers:");
        for (const auto &[k, n] : instants)
            std::printf(" %s=%llu", k.c_str(),
                        static_cast<unsigned long long>(n));
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: trace_tool "
                             "gen|record|convert|info|summary ...\n");
        return 2;
    }
    if (!std::strcmp(argv[1], "gen"))
        return cmdGen(argc, argv);
    if (!std::strcmp(argv[1], "record"))
        return cmdRecord(argc, argv);
    if (!std::strcmp(argv[1], "convert"))
        return cmdConvert(argc, argv);
    if (!std::strcmp(argv[1], "info"))
        return cmdInfo(argc, argv);
    if (!std::strcmp(argv[1], "summary"))
        return cmdSummary(argc, argv);
    std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
    return 2;
}
