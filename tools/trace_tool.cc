/**
 * @file
 * Trace utility: generate workload traces to disk, inspect saved
 * traces, and print per-core composition — so experiments can be run
 * repeatedly against identical frozen inputs.
 *
 * Usage:
 *   trace_tool gen  <workload> <file.bin> [requests] [seed]
 *   trace_tool info <file.bin>
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>

#include "analysis/footprint.h"
#include "trace/workloads.h"

namespace {

using namespace mempod;

int
cmdGen(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: trace_tool gen <workload> <file.bin> "
                     "[requests] [seed]\n");
        return 2;
    }
    GeneratorConfig gc;
    gc.totalRequests =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1'000'000;
    gc.seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 42;
    const WorkloadSpec &spec = findWorkload(argv[2]);
    const Trace trace = buildWorkloadTrace(spec, gc);
    saveTrace(trace, argv[3]);
    const TraceSummary s = summarize(trace);
    std::printf("wrote %llu records (%.1f req/us, %.2f ms) to %s\n",
                static_cast<unsigned long long>(s.records),
                s.requestsPerUs,
                static_cast<double>(s.duration) / 1e9, argv[3]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: trace_tool info <file.bin>\n");
        return 2;
    }
    const Trace trace = loadTrace(argv[2]);
    const TraceSummary s = summarize(trace);
    std::printf("records:      %llu\n",
                static_cast<unsigned long long>(s.records));
    std::printf("reads/writes: %llu / %llu (%.1f%% writes)\n",
                static_cast<unsigned long long>(s.reads),
                static_cast<unsigned long long>(s.writes),
                s.records ? 100.0 * s.writes / s.records : 0.0);
    std::printf("duration:     %.3f ms (%.1f req/us)\n",
                static_cast<double>(s.duration) / 1e9, s.requestsPerUs);
    std::printf("pages:        %llu distinct (core, page) pairs\n",
                static_cast<unsigned long long>(s.touchedPages));

    std::unordered_map<int, std::uint64_t> per_core;
    for (const auto &r : trace)
        ++per_core[r.core];
    const FootprintStats f = analyzeFootprint(trace);
    std::printf("concentration: hottest 1/10/100/1k/10k pages absorb "
                "%.1f/%.1f/%.1f/%.1f/%.1f %% of accesses\n",
                100 * f.concentration[0], 100 * f.concentration[1],
                100 * f.concentration[2], 100 * f.concentration[3],
                100 * f.concentration[4]);
    std::printf("skew index:   %.3f; single-touch pages: %.1f %%; "
                "mean 5500-req working set: %.0f pages\n",
                f.skewIndex, 100 * f.singleTouchFraction,
                f.meanWindowWorkingSet());
    std::printf("per core:    ");
    for (int c = 0; c < 256; ++c) {
        auto it = per_core.find(c);
        if (it != per_core.end())
            std::printf(" c%d=%llu", c,
                        static_cast<unsigned long long>(it->second));
    }
    std::printf("\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: trace_tool gen|info ...\n");
        return 2;
    }
    if (!std::strcmp(argv[1], "gen"))
        return cmdGen(argc, argv);
    if (!std::strcmp(argv[1], "info"))
        return cmdInfo(argc, argv);
    std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
    return 2;
}
