/**
 * @file
 * Host-profile utility for the perf sidecars this repo emits
 * (perf.json per job, BENCH_<name>.json per harness run):
 *
 *   perf_tool summary FILE...
 *       Flatten every numeric leaf to a dotted path and print an
 *       aligned table — a quick way to eyeball one run, or several
 *       side by side.
 *
 *   perf_tool diff BASE CURRENT [--threshold-pct P] [--warn-only]
 *       Compare two sidecars and flag regressions on the tracked
 *       metrics: any `events_per_second` leaf dropping, or any
 *       wall-time leaf (wall_seconds*, wall_ms) rising, by more than
 *       the threshold (default 25%). Exits 1 on regression unless
 *       --warn-only (the CI perf-smoke job runs warn-only: shared
 *       runners are too noisy for a hard gate, but the deltas still
 *       land in the log).
 *
 * The parser below is a minimal recursive-descent JSON reader that
 * keeps only numeric leaves. It handles exactly the JSON this repo
 * writes (objects, arrays, numbers, strings, bools, null) — no
 * surrogate-pair escapes, no arbitrary-precision numbers.
 */
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/** Numeric leaves of one JSON document, keyed by dotted path. */
using FlatDoc = std::map<std::string, double>;

/**
 * Recursive-descent reader over `s` starting at `at`. Object members
 * extend the path with ".key", array elements with "[i]"; numeric
 * leaves land in `out`, everything else is parsed and dropped.
 */
class FlatParser
{
  public:
    FlatParser(const std::string &s, FlatDoc &out) : s_(s), out_(out) {}

    bool
    parse()
    {
        skipWs();
        if (!value(""))
            return false;
        skipWs();
        return at_ == s_.size();
    }

    std::size_t errorAt() const { return at_; }

  private:
    void
    skipWs()
    {
        while (at_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[at_])))
            ++at_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (s_.compare(at_, n, word) != 0)
            return false;
        at_ += n;
        return true;
    }

    /** Parse a string token; returns false on malformed input. */
    bool
    stringToken(std::string &out)
    {
        if (at_ >= s_.size() || s_[at_] != '"')
            return false;
        ++at_;
        out.clear();
        while (at_ < s_.size() && s_[at_] != '"') {
            char c = s_[at_++];
            if (c == '\\' && at_ < s_.size()) {
                const char esc = s_[at_++];
                switch (esc) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'u':
                    // Skip the 4 hex digits; keep a placeholder. The
                    // sidecars never escape anything but quotes and
                    // backslashes, so fidelity here doesn't matter.
                    at_ = std::min(at_ + 4, s_.size());
                    c = '?';
                    break;
                default: c = esc; break;
                }
            }
            out.push_back(c);
        }
        if (at_ >= s_.size())
            return false;
        ++at_; // closing quote
        return true;
    }

    bool
    value(const std::string &path)
    {
        skipWs();
        if (at_ >= s_.size())
            return false;
        const char c = s_[at_];
        if (c == '{')
            return object(path);
        if (c == '[')
            return array(path);
        if (c == '"') {
            std::string ignored;
            return stringToken(ignored);
        }
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        // Number.
        char *end = nullptr;
        const double v = std::strtod(s_.c_str() + at_, &end);
        if (end == s_.c_str() + at_)
            return false;
        at_ = static_cast<std::size_t>(end - s_.c_str());
        if (!path.empty())
            out_[path] = v;
        return true;
    }

    bool
    object(const std::string &path)
    {
        ++at_; // '{'
        skipWs();
        if (at_ < s_.size() && s_[at_] == '}') {
            ++at_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!stringToken(key))
                return false;
            skipWs();
            if (at_ >= s_.size() || s_[at_] != ':')
                return false;
            ++at_;
            if (!value(path.empty() ? key : path + "." + key))
                return false;
            skipWs();
            if (at_ < s_.size() && s_[at_] == ',') {
                ++at_;
                continue;
            }
            if (at_ < s_.size() && s_[at_] == '}') {
                ++at_;
                return true;
            }
            return false;
        }
    }

    bool
    array(const std::string &path)
    {
        ++at_; // '['
        skipWs();
        if (at_ < s_.size() && s_[at_] == ']') {
            ++at_;
            return true;
        }
        std::size_t i = 0;
        while (true) {
            if (!value(path + "[" + std::to_string(i++) + "]"))
                return false;
            skipWs();
            if (at_ < s_.size() && s_[at_] == ',') {
                ++at_;
                continue;
            }
            if (at_ < s_.size() && s_[at_] == ']') {
                ++at_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    FlatDoc &out_;
    std::size_t at_ = 0;
};

/** Load and flatten one sidecar; exits(2) with context on failure. */
FlatDoc
loadFlat(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "perf_tool: cannot open '%s'\n", path);
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    FlatDoc doc;
    FlatParser p(text, doc);
    if (!p.parse()) {
        std::fprintf(stderr,
                     "perf_tool: '%s' is not valid JSON (error near "
                     "byte %zu)\n",
                     path, p.errorAt());
        std::exit(2);
    }
    return doc;
}

/** Compact numeric rendering: integers plain, else 6 significant. */
std::string
num(double v)
{
    char buf[64];
    if (std::fabs(v) < 1e15 && v == std::floor(v))
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else
        std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

int
cmdSummary(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: perf_tool summary FILE...\n");
        return 2;
    }
    // Union of keys across all files, one column per file.
    std::vector<FlatDoc> docs;
    std::map<std::string, bool> keys;
    for (int i = 2; i < argc; ++i) {
        docs.push_back(loadFlat(argv[i]));
        for (const auto &[k, v] : docs.back())
            keys[k] = true;
    }

    std::size_t keyw = std::strlen("metric");
    for (const auto &[k, unused] : keys)
        keyw = std::max(keyw, k.size());

    std::printf("%-*s", static_cast<int>(keyw), "metric");
    for (int i = 2; i < argc; ++i)
        std::printf("  %18s", argv[i]);
    std::printf("\n");
    for (const auto &[k, unused] : keys) {
        std::printf("%-*s", static_cast<int>(keyw), k.c_str());
        for (const FlatDoc &d : docs) {
            const auto it = d.find(k);
            std::printf("  %18s",
                        it == d.end() ? "-" : num(it->second).c_str());
        }
        std::printf("\n");
    }
    return 0;
}

/**
 * Regression direction for a tracked metric: +1 when higher is worse
 * (wall time), -1 when lower is worse (throughput), 0 = not tracked.
 */
int
trackedDirection(const std::string &key)
{
    // Leaf name = last dotted component, minus any [i] suffix.
    std::size_t end = key.size();
    if (end && key[end - 1] == ']') {
        const std::size_t open = key.rfind('[');
        if (open != std::string::npos)
            end = open;
    }
    const std::size_t dot = key.rfind('.', end ? end - 1 : 0);
    const std::string leaf =
        key.substr(dot == std::string::npos ? 0 : dot + 1,
                   end - (dot == std::string::npos ? 0 : dot + 1));
    if (leaf == "events_per_second")
        return -1;
    if (leaf == "wall_seconds" || leaf == "wall_ms" || leaf == "median" ||
        leaf == "p90") {
        // median/p90 only count when they hang off a wall_seconds
        // object (BENCH schema); bare p10 is noise-dominated.
        if (leaf == "median" || leaf == "p90")
            return key.find("wall_seconds") != std::string::npos ? +1
                                                                 : 0;
        return +1;
    }
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    double threshold_pct = 25.0;
    bool warn_only = false;
    std::vector<const char *> files;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--threshold-pct") && i + 1 < argc) {
            threshold_pct = std::strtod(argv[++i], nullptr);
        } else if (!std::strcmp(argv[i], "--warn-only")) {
            warn_only = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "perf_tool diff: unknown flag '%s'\n",
                         argv[i]);
            return 2;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr,
                     "usage: perf_tool diff BASE CURRENT "
                     "[--threshold-pct P] [--warn-only]\n");
        return 2;
    }
    const FlatDoc base = loadFlat(files[0]);
    const FlatDoc cur = loadFlat(files[1]);

    int regressions = 0, improvements = 0, compared = 0;
    std::printf("%-44s %16s %16s %9s\n", "tracked metric", "base",
                "current", "delta");
    for (const auto &[key, bval] : base) {
        const int dir = trackedDirection(key);
        if (dir == 0)
            continue;
        const auto it = cur.find(key);
        if (it == cur.end())
            continue;
        const double cval = it->second;
        if (bval == 0.0)
            continue; // no baseline signal
        ++compared;
        const double pct = 100.0 * (cval - bval) / bval;
        // Positive `worse` = regression in this metric's direction.
        const double worse = pct * dir;
        const char *mark = "";
        if (worse > threshold_pct) {
            mark = "  REGRESSION";
            ++regressions;
        } else if (worse < -threshold_pct) {
            mark = "  improved";
            ++improvements;
        }
        std::printf("%-44s %16s %16s %+8.1f%%%s\n", key.c_str(),
                    num(bval).c_str(), num(cval).c_str(), pct, mark);
    }
    std::printf("\n%d tracked metrics compared: %d regression(s), %d "
                "improvement(s) beyond %.1f%%\n",
                compared, regressions, improvements, threshold_pct);
    if (regressions && warn_only)
        std::printf("warn-only: not failing the run.\n");
    return (regressions && !warn_only) ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: perf_tool summary FILE... | perf_tool diff "
                     "BASE CURRENT [--threshold-pct P] [--warn-only]\n");
        return 2;
    }
    if (!std::strcmp(argv[1], "summary"))
        return cmdSummary(argc, argv);
    if (!std::strcmp(argv[1], "diff"))
        return cmdDiff(argc, argv);
    std::fprintf(stderr, "perf_tool: unknown subcommand '%s'\n",
                 argv[1]);
    return 2;
}
