/**
 * @file
 * Host-profile utility for the perf sidecars this repo emits
 * (perf.json per job, BENCH_<name>.json per harness run):
 *
 *   perf_tool summary FILE...
 *       Flatten every numeric leaf to a dotted path and print an
 *       aligned table — a quick way to eyeball one run, or several
 *       side by side.
 *
 *   perf_tool diff BASE CURRENT [--threshold-pct P] [--warn-only]
 *                               [--require-speedup N]
 *       Compare two sidecars and flag regressions on the tracked
 *       metrics: any throughput leaf (`events_per_second`,
 *       `sim_ms_per_second`) dropping, or any wall-time leaf
 *       (wall_seconds*, wall_ms) rising, by more than the threshold
 *       (default 25%). Tracked keys present in only one file are
 *       reported as "(new)" / "(removed)" rather than silently
 *       skipped or crashed on — schema drift between baselines is
 *       normal as harnesses grow. Exits 1 on regression unless
 *       --warn-only (the CI perf-smoke job runs warn-only: shared
 *       runners are too noisy for a hard gate, but the deltas still
 *       land in the log).
 *
 *       --require-speedup N is a hard gate on simulation cost: every
 *       `events_per_sim_ms` leaf in CURRENT must be at most 1/N of
 *       its BASE value — i.e. the current run retires the same
 *       simulated time in at least N times fewer events. Event
 *       counts are a pure function of configs and traces (no
 *       wall-clock noise), so this is safe as a hard CI gate even on
 *       shared runners; the CI fidelity job uses it to enforce the
 *       sampled-mode >= 10x floor against the detailed sidecar.
 *       Fails when no such leaf exists in both files, so the gate
 *       cannot silently pass on schema drift; --warn-only does not
 *       soften it.
 *
 * The JSON reader lives in flat_json.h, shared with explain_tool.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "flat_json.h"

namespace {

using mempod::tools::FlatDoc;

/** Load and flatten one sidecar; exits(2) with context on failure. */
FlatDoc
loadFlat(const char *path)
{
    return mempod::tools::loadFlat("perf_tool", path);
}

/** Compact numeric rendering: integers plain, else 6 significant. */
std::string
num(double v)
{
    char buf[64];
    if (std::fabs(v) < 1e15 && v == std::floor(v))
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else
        std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

int
cmdSummary(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: perf_tool summary FILE...\n");
        return 2;
    }
    // Union of keys across all files, one column per file.
    std::vector<FlatDoc> docs;
    std::map<std::string, bool> keys;
    for (int i = 2; i < argc; ++i) {
        docs.push_back(loadFlat(argv[i]));
        for (const auto &[k, v] : docs.back())
            keys[k] = true;
    }

    std::size_t keyw = std::strlen("metric");
    for (const auto &[k, unused] : keys)
        keyw = std::max(keyw, k.size());

    std::printf("%-*s", static_cast<int>(keyw), "metric");
    for (int i = 2; i < argc; ++i)
        std::printf("  %18s", argv[i]);
    std::printf("\n");
    for (const auto &[k, unused] : keys) {
        std::printf("%-*s", static_cast<int>(keyw), k.c_str());
        for (const FlatDoc &d : docs) {
            const auto it = d.find(k);
            std::printf("  %18s",
                        it == d.end() ? "-" : num(it->second).c_str());
        }
        std::printf("\n");
    }
    return 0;
}

/**
 * Regression direction for a tracked metric: +1 when higher is worse
 * (wall time), -1 when lower is worse (throughput), 0 = not tracked.
 */
/** Leaf name of a flattened key: last dotted component, minus any
 *  [i] suffix. */
std::string
leafName(const std::string &key)
{
    std::size_t end = key.size();
    if (end && key[end - 1] == ']') {
        const std::size_t open = key.rfind('[');
        if (open != std::string::npos)
            end = open;
    }
    const std::size_t dot = key.rfind('.', end ? end - 1 : 0);
    return key.substr(dot == std::string::npos ? 0 : dot + 1,
                      end - (dot == std::string::npos ? 0 : dot + 1));
}

int
trackedDirection(const std::string &key)
{
    const std::string leaf = leafName(key);
    if (leaf == "events_per_second" || leaf == "sim_ms_per_second")
        return -1;
    if (leaf == "events_per_sim_ms")
        return +1; // cost: more events per simulated ms = more work
    if (leaf == "wall_seconds" || leaf == "wall_ms" || leaf == "median" ||
        leaf == "p90") {
        // median/p90 only count when they hang off a wall_seconds
        // object (BENCH schema); bare p10 is noise-dominated.
        if (leaf == "median" || leaf == "p90")
            return key.find("wall_seconds") != std::string::npos ? +1
                                                                 : 0;
        return +1;
    }
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    double threshold_pct = 25.0;
    double require_speedup = 0.0;
    bool warn_only = false;
    std::vector<const char *> files;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--threshold-pct") && i + 1 < argc) {
            threshold_pct = std::strtod(argv[++i], nullptr);
        } else if (!std::strcmp(argv[i], "--require-speedup") &&
                   i + 1 < argc) {
            require_speedup = std::strtod(argv[++i], nullptr);
            if (require_speedup <= 0.0) {
                std::fprintf(stderr,
                             "perf_tool diff: --require-speedup needs "
                             "a positive factor\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--warn-only")) {
            warn_only = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "perf_tool diff: unknown flag '%s'\n",
                         argv[i]);
            return 2;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr,
                     "usage: perf_tool diff BASE CURRENT "
                     "[--threshold-pct P] [--warn-only] "
                     "[--require-speedup N]\n");
        return 2;
    }
    const FlatDoc base = loadFlat(files[0]);
    const FlatDoc cur = loadFlat(files[1]);

    // Union of tracked keys from both files: a metric present in only
    // one baseline (schema drift as harnesses grow) is reported, not
    // silently skipped — and never counted as a regression.
    std::map<std::string, int> tracked; // key -> direction
    for (const FlatDoc *doc : {&base, &cur})
        for (const auto &[key, unused] : *doc) {
            const int dir = trackedDirection(key);
            if (dir != 0)
                tracked.emplace(key, dir);
        }

    int regressions = 0, improvements = 0, compared = 0;
    int added = 0, removed = 0;
    int speedup_checked = 0, speedup_failures = 0;
    std::printf("%-44s %16s %16s %9s\n", "tracked metric", "base",
                "current", "delta");
    for (const auto &[key, dir] : tracked) {
        const auto bit = base.find(key);
        const auto cit = cur.find(key);
        if (bit == base.end()) {
            std::printf("%-44s %16s %16s %9s\n", key.c_str(), "-",
                        num(cit->second).c_str(), "(new)");
            ++added;
            continue;
        }
        if (cit == cur.end()) {
            std::printf("%-44s %16s %16s %9s\n", key.c_str(),
                        num(bit->second).c_str(), "-", "(removed)");
            ++removed;
            continue;
        }
        const double bval = bit->second;
        const double cval = cit->second;
        if (bval == 0.0)
            continue; // no baseline signal
        ++compared;
        if (require_speedup > 0.0 &&
            leafName(key) == "events_per_sim_ms") {
            ++speedup_checked;
            // Cost metric: fewer events per simulated ms is faster.
            const double speedup = bval / cval;
            const bool pass = speedup >= require_speedup;
            if (!pass)
                ++speedup_failures;
            std::printf("%-44s %16s %16s %8.2fx  speedup %s "
                        "(need %.1fx)\n",
                        key.c_str(), num(bval).c_str(),
                        num(cval).c_str(), speedup,
                        pass ? "OK" : "FAIL", require_speedup);
            continue;
        }
        const double pct = 100.0 * (cval - bval) / bval;
        // Positive `worse` = regression in this metric's direction.
        const double worse = pct * dir;
        const char *mark = "";
        if (worse > threshold_pct) {
            mark = "  REGRESSION";
            ++regressions;
        } else if (worse < -threshold_pct) {
            mark = "  improved";
            ++improvements;
        }
        std::printf("%-44s %16s %16s %+8.1f%%%s\n", key.c_str(),
                    num(bval).c_str(), num(cval).c_str(), pct, mark);
    }
    std::printf("\n%d tracked metrics compared: %d regression(s), %d "
                "improvement(s) beyond %.1f%%",
                compared, regressions, improvements, threshold_pct);
    if (added || removed)
        std::printf("; %d new, %d removed", added, removed);
    std::printf("\n");
    if (regressions && warn_only)
        std::printf("warn-only: not failing the run.\n");
    if (require_speedup > 0.0) {
        if (speedup_checked == 0) {
            std::fprintf(stderr,
                         "perf_tool diff: --require-speedup given but "
                         "no events_per_sim_ms leaf exists in both "
                         "files\n");
            return 1;
        }
        std::printf("speedup gate: %d leaf(s) checked, %d below the "
                    "%.1fx floor\n",
                    speedup_checked, speedup_failures, require_speedup);
        if (speedup_failures)
            return 1; // hard gate: --warn-only does not soften it
    }
    return (regressions && !warn_only) ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: perf_tool summary FILE... | perf_tool diff "
                     "BASE CURRENT [--threshold-pct P] [--warn-only]\n");
        return 2;
    }
    if (!std::strcmp(argv[1], "summary"))
        return cmdSummary(argc, argv);
    if (!std::strcmp(argv[1], "diff"))
        return cmdDiff(argc, argv);
    std::fprintf(stderr, "perf_tool: unknown subcommand '%s'\n",
                 argv[1]);
    return 2;
}
