/**
 * @file
 * Cross-run attribution for the decision-level observability stack:
 *
 *   explain_tool BASE_STATS CUR_STATS
 *                [--decisions BASE_JSONL CUR_JSONL]
 *
 * Given two per-job stats exports ("mempod-stats-v1", written under
 * a run directory's stats/ subdir by --out), explain *where* an
 * AMMAT difference comes from:
 *
 *   - per-component attribution: the delta in each of the five AMMAT
 *     components (mshr_wait, metadata, blocked, queue_wait, service).
 *     These partition arrival-to-finish time exactly, so the
 *     component deltas sum to the measured AMMAT delta — the tool
 *     checks that identity and exits 1 if it fails, because a
 *     mismatch means the stats files are inconsistent or from an
 *     incompatible schema.
 *   - per-pod attribution (MemPod runs): each Pod's contribution to
 *     AMMAT via its blocked_ps/metadata_ps counters, so a regression
 *     can be localized to the pod whose migrations caused it.
 *   - migration quality: migrations, wasted-migration rate, and —
 *     when the "mempod-decisions-v1" ledgers are supplied — the
 *     committed/aborted/ping-pong decision rates of both runs and
 *     the first decision at which the two runs diverge.
 *
 * The ledger is deterministic at any --jobs/--shards, so "first
 * diverging decision" is meaningful: it is the earliest point where
 * the two configurations made different migration choices, which is
 * where causal analysis of the downstream AMMAT delta should start.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "flat_json.h"

namespace {

using mempod::tools::FlatDoc;
using mempod::tools::FlatParser;

FlatDoc
loadStats(const char *path)
{
    return mempod::tools::loadFlat("explain_tool", path);
}

/** Fetch a required key; exits(2) naming it when absent. */
double
need(const FlatDoc &doc, const char *file, const std::string &key)
{
    const auto it = doc.find(key);
    if (it == doc.end()) {
        std::fprintf(stderr,
                     "explain_tool: '%s' has no numeric key '%s' — is "
                     "it a mempod-stats-v1 export?\n",
                     file, key.c_str());
        std::exit(2);
    }
    return it->second;
}

double
get(const FlatDoc &doc, const std::string &key, double fallback = 0.0)
{
    const auto it = doc.find(key);
    return it == doc.end() ? fallback : it->second;
}

std::string
num(double v)
{
    char buf[64];
    if (std::fabs(v) < 1e15 && v == std::floor(v))
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else
        std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

/** Whole file as newline-split lines (without the trailing '\n'). */
std::vector<std::string>
readLines(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "explain_tool: cannot open '%s'\n", path);
        std::exit(2);
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** Ledger totals parsed from a "mempod-decisions-v1" header line. */
struct LedgerSummary
{
    double decisions = 0, committed = 0, aborted = 0, pingPongs = 0;
};

LedgerSummary
parseLedgerHeader(const char *path, const std::vector<std::string> &lines)
{
    if (lines.empty()) {
        std::fprintf(stderr, "explain_tool: '%s' is empty\n", path);
        std::exit(2);
    }
    FlatDoc doc;
    FlatParser p(lines[0], doc);
    if (!p.parse() || doc.find("decisions") == doc.end()) {
        std::fprintf(stderr,
                     "explain_tool: '%s' does not start with a "
                     "mempod-decisions-v1 header line\n",
                     path);
        std::exit(2);
    }
    LedgerSummary s;
    s.decisions = doc["decisions"];
    s.committed = doc["committed"];
    s.aborted = doc["aborted"];
    s.pingPongs = doc["ping_pongs"];
    return s;
}

double
rate(double part, double whole)
{
    return whole > 0 ? part / whole : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *base_stats = nullptr, *cur_stats = nullptr;
    const char *base_dec = nullptr, *cur_dec = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--decisions")) {
            if (i + 2 >= argc) {
                std::fprintf(stderr, "explain_tool: --decisions needs "
                                     "BASE_JSONL and CUR_JSONL\n");
                return 2;
            }
            base_dec = argv[++i];
            cur_dec = argv[++i];
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "explain_tool: unknown flag '%s'\n", argv[i]);
            return 2;
        } else if (!base_stats) {
            base_stats = argv[i];
        } else if (!cur_stats) {
            cur_stats = argv[i];
        } else {
            std::fprintf(stderr, "explain_tool: too many arguments\n");
            return 2;
        }
    }
    if (!base_stats || !cur_stats) {
        std::fprintf(stderr,
                     "usage: explain_tool BASE_STATS CUR_STATS "
                     "[--decisions BASE_JSONL CUR_JSONL]\n");
        return 2;
    }

    const FlatDoc base = loadStats(base_stats);
    const FlatDoc cur = loadStats(cur_stats);

    const double base_ammat = need(base, base_stats, "summary.ammat_ns");
    const double cur_ammat = need(cur, cur_stats, "summary.ammat_ns");
    const double measured_delta = cur_ammat - base_ammat;
    std::printf("AMMAT: base %s ns -> current %s ns (delta %+.6g ns)\n\n",
                num(base_ammat).c_str(), num(cur_ammat).c_str(),
                measured_delta);

    // --- per-component attribution ------------------------------------
    // The five components partition every request's arrival-to-finish
    // time, so their deltas sum exactly to the AMMAT delta.
    static const char *const kComponents[] = {
        "mshr_wait", "metadata", "blocked", "queue_wait", "service"};
    std::printf("%-12s %14s %14s %14s %8s\n", "component", "base_ns",
                "current_ns", "delta_ns", "share");
    double sum_delta = 0.0;
    for (const char *c : kComponents) {
        const std::string key =
            std::string("summary.attribution_ns.") + c;
        const double b = need(base, base_stats, key);
        const double v = need(cur, cur_stats, key);
        const double d = v - b;
        sum_delta += d;
        std::printf("%-12s %14s %14s %+14.6g %7.1f%%\n", c,
                    num(b).c_str(), num(v).c_str(), d,
                    measured_delta != 0.0 ? 100.0 * d / measured_delta
                                          : 0.0);
    }
    // Identity check: |sum - measured| within rounding of the larger.
    const double scale =
        std::max({std::fabs(sum_delta), std::fabs(measured_delta), 1.0});
    const bool attribution_ok =
        std::fabs(sum_delta - measured_delta) <= 1e-9 * scale;
    std::printf("attribution_delta_check: %s (sum=%.9g, measured=%.9g)\n",
                attribution_ok ? "OK" : "MISMATCH", sum_delta,
                measured_delta);

    // --- per-pod attribution (MemPod runs only) -----------------------
    // Each pod's blocked_ps + metadata_ps counters, amortized over the
    // run's demand requests, give its ns-per-access contribution; the
    // deltas localize a regression to the pod that caused it.
    const double base_reqs =
        need(base, base_stats, "summary.demand_requests");
    const double cur_reqs = need(cur, cur_stats, "summary.demand_requests");
    bool pod_header = false;
    for (int pod = 0; pod < 4096; ++pod) {
        const std::string p = "metrics.pod" + std::to_string(pod);
        const std::string blocked = p + ".migration.blocked_ps.value";
        const std::string meta = p + ".migration.metadata_ps.value";
        const std::string migs = p + ".migration.migrations.value";
        if (base.find(blocked) == base.end() &&
            cur.find(blocked) == cur.end())
            break; // pods are densely numbered; first gap = done
        if (!pod_header) {
            std::printf("\n%-8s %12s %14s %14s %14s\n", "pod",
                        "migrations", "base_ns/acc", "cur_ns/acc",
                        "delta_ns/acc");
            pod_header = true;
        }
        const double b_ns =
            (get(base, blocked) + get(base, meta)) / 1e3 /
            std::max(base_reqs, 1.0);
        const double c_ns = (get(cur, blocked) + get(cur, meta)) / 1e3 /
                            std::max(cur_reqs, 1.0);
        std::printf("pod%-5d %5s/%-6s %14.6g %14.6g %+14.6g\n", pod,
                    num(get(base, migs)).c_str(),
                    num(get(cur, migs)).c_str(), b_ns, c_ns,
                    c_ns - b_ns);
    }

    // --- migration quality --------------------------------------------
    const double b_migs = get(base, "summary.migrations");
    const double c_migs = get(cur, "summary.migrations");
    const double b_wasted = get(base, "summary.wasted_migrations");
    const double c_wasted = get(cur, "summary.wasted_migrations");
    std::printf("\nmigrations: base %s (%.1f%% wasted) -> current %s "
                "(%.1f%% wasted)\n",
                num(b_migs).c_str(), 100.0 * rate(b_wasted, b_migs),
                num(c_migs).c_str(), 100.0 * rate(c_wasted, c_migs));

    // --- decision-ledger comparison (optional) ------------------------
    if (base_dec && cur_dec) {
        const std::vector<std::string> bl = readLines(base_dec);
        const std::vector<std::string> cl = readLines(cur_dec);
        const LedgerSummary bs = parseLedgerHeader(base_dec, bl);
        const LedgerSummary cs = parseLedgerHeader(cur_dec, cl);
        std::printf("\ndecisions: base %s (%.1f%% aborted, %.1f%% "
                    "ping-pong) -> current %s (%.1f%% aborted, %.1f%% "
                    "ping-pong)\n",
                    num(bs.decisions).c_str(),
                    100.0 * rate(bs.aborted, bs.decisions),
                    100.0 * rate(bs.pingPongs, bs.committed),
                    num(cs.decisions).c_str(),
                    100.0 * rate(cs.aborted, cs.decisions),
                    100.0 * rate(cs.pingPongs, cs.committed));

        // Line 0 is the header (carries run identity), lines 1.. are
        // decisions in the order the policies made them.
        std::size_t diverge = 1;
        const std::size_t n = std::min(bl.size(), cl.size());
        while (diverge < n && bl[diverge] == cl[diverge])
            ++diverge;
        if (diverge >= bl.size() && diverge >= cl.size()) {
            std::printf("decision ledgers are identical (%zu "
                        "decisions)\n",
                        bl.size() - 1);
        } else {
            std::printf("first diverging decision: #%zu\n",
                        diverge - 1);
            std::printf("  base:    %s\n",
                        diverge < bl.size() ? bl[diverge].c_str()
                                            : "(ledger ended)");
            std::printf("  current: %s\n",
                        diverge < cl.size() ? cl[diverge].c_str()
                                            : "(ledger ended)");
        }
    }

    return attribution_ok ? 0 : 1;
}
